package simd

// AVX-512F kernel entry points (kernels_avx512_amd64.s). All of them
// trust their index arguments — see the package's index-trust contract.
// Lane-unaligned tails are handled with opmask-predicated loads, gathers
// and stores (no scalar remainder loop for the gather kernels).
// Accumulation order: axpyGather, laneDot8 and the two 8-wide tiles
// preserve the scalar order (separate VMULPD/VADDPD, independent lanes);
// dotGather (16-partial-sum FMA) and bcsr2x2 (four blocks per iteration,
// FMA) reassociate with the documented ULP tolerance.

//go:noescape
func dotGatherAVX512(val *float64, idx *int32, x *float64, n int) float64

//go:noescape
func axpyGatherAVX512(y, val *float64, idx *int32, x *float64, n int)

//go:noescape
func laneDot8AVX512(val *float64, idx *int32, x *float64, stride, n int) (sums [8]float64)

//go:noescape
func bcsr2x2AVX512(val *float64, blkCol *int32, x *float64, n int) (s0, s1 float64)

//go:noescape
func dotBcastTile8AVX512(val *float64, idx *int32, x *float64, stride, n, k int) (dst [8]float64)

//go:noescape
func bcsr2x2Tile8AVX512(val *float64, blkCol *int32, x *float64, n, k int) (lo, hi [8]float64)
