#include "textflag.h"

// AVX-512F micro-kernels for the SpMV inner loops: 8-lane ZMM ports of
// the AVX2 kernels in kernels_amd64.s.
//
// Conventions (on top of the AVX2 file's):
//   - Gathers load x through sign-extended 32-bit column indices
//     (VPMOVSXDQ + VGATHERQPD) under an opmask rebuilt before EVERY
//     gather — the instruction zeroes its mask as it completes.
//   - Lane-unaligned tails use opmask predication: the tail mask is
//     (1<<rem)-1, masked loads are zeroing (.Z) so dead lanes contribute
//     exact zeros, and masked-off elements are never dereferenced (EVEX
//     fault suppression) — no scalar remainder loops.
//   - Kernels that promise bit-identity to the scalar path use separate
//     VMULPD/VADDPD (no FMA contraction) and preserve the scalar
//     accumulation order per output element.
//   - VZEROUPPER before every RET that follows ZMM/YMM use.

// Permutation controls for bcsr2x2AVX512 (four 2x2 blocks per
// iteration). bcsrDup expands four block columns to gather index pairs;
// bcsrPairA/B expand the gathered [x0 x1] pairs to the per-block
// [x0 x1 x0 x1] pattern the interleaved val layout multiplies against.
DATA bcsrDup<>+0(SB)/8, $0
DATA bcsrDup<>+8(SB)/8, $0
DATA bcsrDup<>+16(SB)/8, $1
DATA bcsrDup<>+24(SB)/8, $1
DATA bcsrDup<>+32(SB)/8, $2
DATA bcsrDup<>+40(SB)/8, $2
DATA bcsrDup<>+48(SB)/8, $3
DATA bcsrDup<>+56(SB)/8, $3
GLOBL bcsrDup<>(SB), RODATA|NOPTR, $64

DATA bcsrOdd<>+0(SB)/8, $0
DATA bcsrOdd<>+8(SB)/8, $1
DATA bcsrOdd<>+16(SB)/8, $0
DATA bcsrOdd<>+24(SB)/8, $1
DATA bcsrOdd<>+32(SB)/8, $0
DATA bcsrOdd<>+40(SB)/8, $1
DATA bcsrOdd<>+48(SB)/8, $0
DATA bcsrOdd<>+56(SB)/8, $1
GLOBL bcsrOdd<>(SB), RODATA|NOPTR, $64

DATA bcsrPairA<>+0(SB)/8, $0
DATA bcsrPairA<>+8(SB)/8, $1
DATA bcsrPairA<>+16(SB)/8, $0
DATA bcsrPairA<>+24(SB)/8, $1
DATA bcsrPairA<>+32(SB)/8, $2
DATA bcsrPairA<>+40(SB)/8, $3
DATA bcsrPairA<>+48(SB)/8, $2
DATA bcsrPairA<>+56(SB)/8, $3
GLOBL bcsrPairA<>(SB), RODATA|NOPTR, $64

DATA bcsrPairB<>+0(SB)/8, $4
DATA bcsrPairB<>+8(SB)/8, $5
DATA bcsrPairB<>+16(SB)/8, $4
DATA bcsrPairB<>+24(SB)/8, $5
DATA bcsrPairB<>+32(SB)/8, $6
DATA bcsrPairB<>+40(SB)/8, $7
DATA bcsrPairB<>+48(SB)/8, $6
DATA bcsrPairB<>+56(SB)/8, $7
GLOBL bcsrPairB<>(SB), RODATA|NOPTR, $64

// func dotGatherAVX512(val *float64, idx *int32, x *float64, n int) float64
//
// CSR row dot-product: sum(val[j] * x[idx[j]]). Sixteen partial sums in
// two ZMM accumulators, FMA, pairwise reduction, opmask tail —
// reassociates vs the scalar sequential sum (documented ULP tolerance).
TEXT ·dotGatherAVX512(SB), NOSPLIT, $0-40
	MOVQ   val+0(FP), SI
	MOVQ   idx+8(FP), DI
	MOVQ   x+16(FP), DX
	MOVQ   n+24(FP), CX
	VXORPD Z0, Z0, Z0              // acc0
	VXORPD Z1, Z1, Z1              // acc1
	XORQ   AX, AX                  // j
	MOVQ   CX, BX
	ANDQ   $-16, BX                // n &^ 15
	JZ     group8

loop16:
	VPMOVSXDQ  (DI)(AX*4), Z2      // idx[j..j+7] -> int64
	KXNORW     K1, K1, K1          // gather mask (all ones)
	VXORPD     Z5, Z5, Z5
	VGATHERQPD (DX)(Z2*8), K1, Z5  // x[idx[j..j+7]]
	VFMADD231PD (SI)(AX*8), Z5, Z0 // acc0 += val * x

	VPMOVSXDQ  32(DI)(AX*4), Z2    // idx[j+8..j+15]
	KXNORW     K1, K1, K1
	VXORPD     Z6, Z6, Z6
	VGATHERQPD (DX)(Z2*8), K1, Z6
	VFMADD231PD 64(SI)(AX*8), Z6, Z1

	ADDQ $16, AX
	CMPQ AX, BX
	JLT  loop16

group8:
	TESTQ $8, CX                   // one remaining 8-group?
	JZ    tail
	VPMOVSXDQ  (DI)(AX*4), Z2
	KXNORW     K1, K1, K1
	VXORPD     Z5, Z5, Z5
	VGATHERQPD (DX)(Z2*8), K1, Z5
	VFMADD231PD (SI)(AX*8), Z5, Z0
	ADDQ $8, AX

tail:
	SUBQ AX, CX                    // rem = n - j (0..7)
	JZ   reduce
	MOVL $1, R10
	SHLL CX, R10
	DECL R10                       // (1<<rem)-1
	KMOVW R10, K2
	VPMOVSXDQ.Z (DI)(AX*4), K2, Z2 // masked idx load (fault-suppressed)
	KMOVW K2, K3                   // gather clobbers its mask
	VXORPD     Z5, Z5, Z5
	VGATHERQPD (DX)(Z2*8), K3, Z5
	VMOVUPD.Z  (SI)(AX*8), K2, Z6  // masked val load: dead lanes 0
	VFMADD231PD Z5, Z6, Z0         // dead lanes contribute 0*0

reduce:
	VADDPD        Z1, Z0, Z0
	VEXTRACTF64X4 $1, Z0, Y1
	VADDPD        Y1, Y0, Y0
	VEXTRACTF128  $1, Y0, X1
	VADDPD        X1, X0, X0
	VUNPCKHPD     X0, X0, X1
	VADDSD        X1, X0, X0
	VZEROUPPER
	MOVSD X0, ret+32(FP)
	RET

// func axpyGatherAVX512(y, val *float64, idx *int32, x *float64, n int)
//
// ELL slab column sweep: y[j] += val[j] * x[idx[j]]. One mul-then-add per
// element in element order, masked tail — bit-identical to the scalar
// sweep.
TEXT ·axpyGatherAVX512(SB), NOSPLIT, $0-40
	MOVQ y+0(FP), R8
	MOVQ val+8(FP), SI
	MOVQ idx+16(FP), DI
	MOVQ x+24(FP), DX
	MOVQ n+32(FP), CX
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX
	JZ   tail

loop8:
	VPMOVSXDQ  (DI)(AX*4), Z2
	KXNORW     K1, K1, K1
	VXORPD     Z5, Z5, Z5
	VGATHERQPD (DX)(Z2*8), K1, Z5
	VMULPD     (SI)(AX*8), Z5, Z5  // val * x
	VADDPD     (R8)(AX*8), Z5, Z5  // + y
	VMOVUPD    Z5, (R8)(AX*8)
	ADDQ $8, AX
	CMPQ AX, BX
	JLT  loop8

tail:
	SUBQ AX, CX                    // rem (0..7)
	JZ   done
	MOVL $1, R10
	SHLL CX, R10
	DECL R10
	KMOVW R10, K2
	VPMOVSXDQ.Z (DI)(AX*4), K2, Z2
	KMOVW K2, K3
	VXORPD     Z5, Z5, Z5
	VGATHERQPD (DX)(Z2*8), K3, Z5
	VMOVUPD.Z  (SI)(AX*8), K2, Z6
	VMULPD     Z5, Z6, Z5          // val * x
	VMOVUPD.Z  (R8)(AX*8), K2, Z7
	VADDPD     Z7, Z5, Z5
	VMOVUPD    Z5, K2, (R8)(AX*8)  // masked store: live lanes only

done:
	VZEROUPPER
	RET

// func laneDot8AVX512(val *float64, idx *int32, x *float64, stride, n int) (sums [8]float64)
//
// SELL-C-sigma chunk sweep: eight independent lane sums accumulated over
// n strided columns, returned by value. Each lane accumulates
// sequentially in ascending column order — bit-identical to the scalar
// lane loop.
TEXT ·laneDot8AVX512(SB), NOSPLIT, $0-104
	MOVQ   val+0(FP), SI
	MOVQ   idx+8(FP), DI
	MOVQ   x+16(FP), DX
	MOVQ   stride+24(FP), R10
	MOVQ   n+32(FP), CX
	VXORPD Z0, Z0, Z0
	MOVQ   R10, R11
	SHLQ   $3, R10                 // stride * 8 (val step, bytes)
	SHLQ   $2, R11                 // stride * 4 (idx step, bytes)
	TESTQ  CX, CX
	JZ     done

loop:
	VPMOVSXDQ  (DI), Z2
	KXNORW     K1, K1, K1
	VXORPD     Z5, Z5, Z5
	VGATHERQPD (DX)(Z2*8), K1, Z5
	VMULPD     (SI), Z5, Z5
	VADDPD     Z5, Z0, Z0
	ADDQ R10, SI
	ADDQ R11, DI
	DECQ CX
	JNZ  loop

done:
	LEAQ    sums+40(FP), R8
	VMOVUPD Z0, (R8)
	VZEROUPPER
	RET

// func bcsr2x2AVX512(val *float64, blkCol *int32, x *float64, n int) (s0, s1 float64)
//
// BCSR block-row sweep over n interior 2x2 blocks, four blocks per
// iteration: one 8-lane gather fetches the four [x0 x1] pairs, two
// permutes expand them against the interleaved block values, and two
// FMA accumulators carry [v0x0, v1x1, v2x0, v3x1] per block. Unlike the
// AVX2 kernel this reassociates across blocks and fuses rounding
// (documented ULP tolerance; KernelImpl gates the test policy).
TEXT ·bcsr2x2AVX512(SB), NOSPLIT, $0-48
	MOVQ   val+0(FP), SI
	MOVQ   blkCol+8(FP), DI
	MOVQ   x+16(FP), DX
	MOVQ   n+24(FP), CX
	VXORPD X0, X0, X0              // [s0, s1]
	MOVQ   CX, BX
	ANDQ   $-4, BX                 // grouped block count
	SUBQ   BX, CX                  // tail block count (0..3)
	TESTQ  BX, BX
	JZ     tail

	VMOVUPD bcsrDup<>(SB), Z10
	VMOVUPD bcsrOdd<>(SB), Z11
	VMOVUPD bcsrPairA<>(SB), Z12
	VMOVUPD bcsrPairB<>(SB), Z13
	VXORPD  Z8, Z8, Z8             // acc blocks 4b, 4b+1
	VXORPD  Z9, Z9, Z9             // acc blocks 4b+2, 4b+3

loop4:
	VPMOVSXDQ (DI), Y2             // c0..c3 -> int64 (upper ZMM half zero)
	VPERMQ    Z2, Z10, Z3          // [c0 c0 c1 c1 c2 c2 c3 c3]
	VPSLLQ    $1, Z3, Z3           // *2: x element columns
	VPADDQ    Z11, Z3, Z3          // + [0 1 0 1 ...]
	KXNORW    K1, K1, K1
	VXORPD    Z4, Z4, Z4
	VGATHERQPD (DX)(Z3*8), K1, Z4  // [x0b0 x1b0 x0b1 x1b1 x0b2 x1b2 x0b3 x1b3]

	VPERMQ      Z4, Z12, Z5        // [x0 x1 x0 x1] for blocks 0,1
	VFMADD231PD (SI), Z5, Z8       // += [v0x0 v1x1 v2x0 v3x1 | block 1]
	VPERMQ      Z4, Z13, Z6        // same for blocks 2,3
	VFMADD231PD 64(SI), Z6, Z9

	ADDQ $128, SI                  // 4 blocks * 4 doubles
	ADDQ $16, DI                   // 4 block columns
	SUBQ $4, BX
	JNZ  loop4

	// Reduce the two ZMM accumulators to the [s0, s1] pair: lanes 0,1
	// (and 4,5) carry row 0 terms, lanes 2,3 (and 6,7) row 1.
	VADDPD        Z9, Z8, Z8
	VEXTRACTF64X4 $1, Z8, Y9
	VADDPD        Y9, Y8, Y8       // [r0 r0' r1 r1']
	VEXTRACTF128  $1, Y8, X9       // [r1 r1']
	VHADDPD       X9, X8, X0       // [s0, s1]

tail:
	TESTQ CX, CX
	JZ    done

tailloop:
	MOVLQSX (DI), AX               // bj
	SHLQ    $4, AX                 // bj*2 doubles = bj*16 bytes
	VMOVUPD (DX)(AX*1), X1         // [x0, x1]
	VMULPD  (SI), X1, X2           // [v0*x0, v1*x1]
	VMULPD  16(SI), X1, X3         // [v2*x0, v3*x1]
	VHADDPD X3, X2, X2             // [v0x0+v1x1, v2x0+v3x1]
	VADDPD  X2, X0, X0
	ADDQ $32, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  tailloop

done:
	VMOVSD    X0, s0+32(FP)
	VPERMILPD $1, X0, X0
	VMOVSD    X0, s1+40(FP)
	VZEROUPPER
	RET

// func dotBcastTile8AVX512(val *float64, idx *int32, x *float64, stride, n, k int) (dst [8]float64)
//
// Fused SpMM register tile: dst[t] = sum of val[j*stride] * X[idx[j*stride], t]
// for the 8 tile vectors t, returned by value. x is pre-offset to the
// tile start. Each lane is an independent sequential mul-then-add sum —
// bit-identical.
TEXT ·dotBcastTile8AVX512(SB), NOSPLIT, $0-112
	MOVQ   val+0(FP), SI
	MOVQ   idx+8(FP), DI
	MOVQ   x+16(FP), DX
	MOVQ   stride+24(FP), R10
	MOVQ   n+32(FP), CX
	MOVQ   k+40(FP), R12
	SHLQ   $3, R12                 // k * 8: X row pitch in bytes
	MOVQ   R10, R11
	SHLQ   $3, R10                 // stride * 8
	SHLQ   $2, R11                 // stride * 4
	VXORPD Z0, Z0, Z0
	TESTQ  CX, CX
	JZ     done

loop:
	MOVLQSX      (DI), AX
	IMULQ        R12, AX           // idx * k * 8
	VMOVUPD      (DX)(AX*1), Z1    // X tile row (8 vectors)
	VBROADCASTSD (SI), Z2
	VMULPD       Z1, Z2, Z2
	VADDPD       Z2, Z0, Z0
	ADDQ R10, SI
	ADDQ R11, DI
	DECQ CX
	JNZ  loop

done:
	LEAQ    dst+48(FP), R8
	VMOVUPD Z0, (R8)
	VZEROUPPER
	RET

// func bcsr2x2Tile8AVX512(val *float64, blkCol *int32, x *float64, n, k int) (lo, hi [8]float64)
//
// BCSR SpMM tile: 2 block rows x 8 tile vectors over n interior 2x2
// blocks, returned by value (lo is block row 0's tile, hi row 1's). x is
// pre-offset to the tile start. Per lane: d += (v_lo*x0 + v_hi*x1) —
// bit-identical.
TEXT ·bcsr2x2Tile8AVX512(SB), NOSPLIT, $0-168
	MOVQ   val+0(FP), SI
	MOVQ   blkCol+8(FP), DI
	MOVQ   x+16(FP), DX
	MOVQ   n+24(FP), CX
	MOVQ   k+32(FP), R12
	SHLQ   $3, R12                 // k * 8: X row pitch in bytes
	VXORPD Z0, Z0, Z0              // row 0 tile
	VXORPD Z1, Z1, Z1              // row 1 tile
	TESTQ  CX, CX
	JZ     done

loop:
	MOVLQSX (DI), AX
	ADDQ    AX, AX                 // bj*2
	IMULQ   R12, AX                // byte offset of X row bj*2
	VMOVUPD (DX)(AX*1), Z2         // x0 tile
	ADDQ    R12, AX
	VMOVUPD (DX)(AX*1), Z3         // x1 tile

	VBROADCASTSD (SI), Z4          // v0
	VBROADCASTSD 8(SI), Z5         // v1
	VMULPD       Z2, Z4, Z4
	VMULPD       Z3, Z5, Z5
	VADDPD       Z5, Z4, Z4        // v0*x0 + v1*x1
	VADDPD       Z4, Z0, Z0

	VBROADCASTSD 16(SI), Z4        // v2
	VBROADCASTSD 24(SI), Z5        // v3
	VMULPD       Z2, Z4, Z4
	VMULPD       Z3, Z5, Z5
	VADDPD       Z5, Z4, Z4
	VADDPD       Z4, Z1, Z1

	ADDQ $32, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  loop

done:
	LEAQ    lo+40(FP), R8
	VMOVUPD Z0, (R8)
	VMOVUPD Z1, 64(R8)
	VZEROUPPER
	RET
