package simd

import "unsafe"

// The dispatch table. Entries point at the portable scalar references
// below until an architecture init (detect) installs accelerated
// implementations. The pointer signatures mirror the assembly stubs so
// one table serves both.
var (
	dotGather     func(val *float64, idx *int32, x *float64, n int) float64                   = dotGatherScalar
	axpyGather    func(y, val *float64, idx *int32, x *float64, n int)                        = axpyGatherScalar
	laneDot4      func(val *float64, idx *int32, x *float64, stride, n int) [4]float64        = laneDot4Scalar
	laneDot8      func(val *float64, idx *int32, x *float64, stride, n int) [8]float64        = laneDot8Scalar
	bcsr2x2       func(val *float64, blkCol *int32, x *float64, n int) (s0, s1 float64)       = bcsr2x2Scalar
	dotBcastTile  func(val *float64, idx *int32, x *float64, stride, n, k int) [4]float64     = dotBcastTileScalar
	dotBcastTile8 func(val *float64, idx *int32, x *float64, stride, n, k int) [8]float64     = dotBcastTile8Scalar
	bcsr2x2Tile   func(val *float64, blkCol *int32, x *float64, n, k int) (lo, hi [4]float64) = bcsr2x2TileScalar
	bcsr2x2Tile8  func(val *float64, blkCol *int32, x *float64, n, k int) (lo, hi [8]float64) = bcsr2x2Tile8Scalar
)

// The scalar references reproduce the format kernels' accumulation order
// exactly (they are the contract the assembly is tested against), just
// behind the pointer ABI of the table. unsafe.Slice only rebuilds the
// slice headers the exported wrappers flattened.

func dotGatherScalar(val *float64, idx *int32, x *float64, n int) float64 {
	v := unsafe.Slice(val, n)
	c := unsafe.Slice(idx, n)
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+4 <= n; j += 4 {
		s0 += v[j] * *ptrAt(x, c[j])
		s1 += v[j+1] * *ptrAt(x, c[j+1])
		s2 += v[j+2] * *ptrAt(x, c[j+2])
		s3 += v[j+3] * *ptrAt(x, c[j+3])
	}
	sum := (s0 + s1) + (s2 + s3)
	for ; j < n; j++ {
		sum += v[j] * *ptrAt(x, c[j])
	}
	return sum
}

func axpyGatherScalar(y, val *float64, idx *int32, x *float64, n int) {
	yy := unsafe.Slice(y, n)
	v := unsafe.Slice(val, n)
	c := unsafe.Slice(idx, n)
	for j := range yy {
		yy[j] += v[j] * *ptrAt(x, c[j])
	}
}

func laneDot4Scalar(val *float64, idx *int32, x *float64, stride, n int) (sums [4]float64) {
	v := unsafe.Slice(val, (n-1)*stride+4)
	c := unsafe.Slice(idx, (n-1)*stride+4)
	for j := 0; j < n; j++ {
		at := j * stride
		sums[0] += v[at] * *ptrAt(x, c[at])
		sums[1] += v[at+1] * *ptrAt(x, c[at+1])
		sums[2] += v[at+2] * *ptrAt(x, c[at+2])
		sums[3] += v[at+3] * *ptrAt(x, c[at+3])
	}
	return sums
}

func laneDot8Scalar(val *float64, idx *int32, x *float64, stride, n int) (sums [8]float64) {
	v := unsafe.Slice(val, (n-1)*stride+8)
	c := unsafe.Slice(idx, (n-1)*stride+8)
	for j := 0; j < n; j++ {
		at := j * stride
		for l := 0; l < 8; l++ {
			sums[l] += v[at+l] * *ptrAt(x, c[at+l])
		}
	}
	return sums
}

func bcsr2x2Scalar(val *float64, blkCol *int32, x *float64, n int) (s0, s1 float64) {
	v := unsafe.Slice(val, n*4)
	bc := unsafe.Slice(blkCol, n)
	for b := 0; b < n; b++ {
		x0 := *ptrAt(x, bc[b]*2)
		x1 := *ptrAt(x, bc[b]*2+1)
		off := b * 4
		s0 += v[off]*x0 + v[off+1]*x1
		s1 += v[off+2]*x0 + v[off+3]*x1
	}
	return s0, s1
}

func dotBcastTileScalar(val *float64, idx *int32, x *float64, stride, n, k int) (dst [4]float64) {
	v := unsafe.Slice(val, (n-1)*stride+1)
	c := unsafe.Slice(idx, (n-1)*stride+1)
	for j := 0; j < n; j++ {
		vj := v[j*stride]
		xb := unsafe.Slice(ptrAt(x, c[j*stride]*int32(k)), 4)
		dst[0] += vj * xb[0]
		dst[1] += vj * xb[1]
		dst[2] += vj * xb[2]
		dst[3] += vj * xb[3]
	}
	return dst
}

func bcsr2x2TileScalar(val *float64, blkCol *int32, x *float64, n, k int) (lo, hi [4]float64) {
	v := unsafe.Slice(val, n*4)
	bc := unsafe.Slice(blkCol, n)
	for b := 0; b < n; b++ {
		base := int(bc[b]) * 2 * k
		x0 := unsafe.Slice(ptrAt(x, int32(base)), 4)
		x1 := unsafe.Slice(ptrAt(x, int32(base+k)), 4)
		off := b * 4
		v0, v1, v2, v3 := v[off], v[off+1], v[off+2], v[off+3]
		for t := 0; t < 4; t++ {
			lo[t] += v0*x0[t] + v1*x1[t]
			hi[t] += v2*x0[t] + v3*x1[t]
		}
	}
	return lo, hi
}

func dotBcastTile8Scalar(val *float64, idx *int32, x *float64, stride, n, k int) (dst [8]float64) {
	v := unsafe.Slice(val, (n-1)*stride+1)
	c := unsafe.Slice(idx, (n-1)*stride+1)
	for j := 0; j < n; j++ {
		vj := v[j*stride]
		xb := unsafe.Slice(ptrAt(x, c[j*stride]*int32(k)), 8)
		for t := 0; t < 8; t++ {
			dst[t] += vj * xb[t]
		}
	}
	return dst
}

func bcsr2x2Tile8Scalar(val *float64, blkCol *int32, x *float64, n, k int) (lo, hi [8]float64) {
	v := unsafe.Slice(val, n*4)
	bc := unsafe.Slice(blkCol, n)
	for b := 0; b < n; b++ {
		base := int(bc[b]) * 2 * k
		x0 := unsafe.Slice(ptrAt(x, int32(base)), 8)
		x1 := unsafe.Slice(ptrAt(x, int32(base+k)), 8)
		off := b * 4
		v0, v1, v2, v3 := v[off], v[off+1], v[off+2], v[off+3]
		for t := 0; t < 8; t++ {
			lo[t] += v0*x0[t] + v1*x1[t]
			hi[t] += v2*x0[t] + v3*x1[t]
		}
	}
	return lo, hi
}

// ptrAt indexes a flattened float64 base pointer (the x vector) by a
// 32-bit column index.
func ptrAt(x *float64, i int32) *float64 {
	return (*float64)(unsafe.Add(unsafe.Pointer(x), uintptr(i)*8))
}
