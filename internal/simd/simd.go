// Package simd provides vectorized micro-kernels for the hottest SpMV
// inner loops — the CSR row dot-product, the ELL/SELL-C-sigma slab sweeps,
// the BCSR 2x2 tile, and the k-wide broadcast tile of the fused SpMM
// kernels — with runtime CPU-feature detection and per-kernel
// function-pointer dispatch.
//
// # Dispatch
//
// At init the package probes the CPU (CPUID/XGETBV on amd64) and installs
// the widest kernel implementation the hardware and OS support into a
// function-pointer table; everything else keeps the portable scalar
// reference path that lives in the format kernels themselves. The format
// packages consult Enabled() once per kernel invocation and branch to
// either the dispatched kernels here or their original scalar loops, so a
// disabled dispatch pays zero indirection.
//
// # Kill switch
//
// Setting SPMV_NOSIMD=1 in the environment (or calling SetEnabled(false)
// at runtime) routes every kernel back to the scalar reference path. The
// scalar path is the correctness anchor: equivalence property tests in
// internal/formats pin the dispatched kernels against it on every run.
//
// # Accumulation-order contract
//
// The dispatched kernels are drop-in replacements at the bit level
// wherever the scalar kernel's accumulation order survives vectorization:
//
//   - AxpyGather (ELL column sweep): each y[j] receives exactly one
//     mul-then-add per slab column, in the same column order — results are
//     bit-identical to the scalar sweep.
//   - LaneDot4 (SELL-C-sigma slab): each lane's sum accumulates
//     sequentially in ascending column order (lanes are independent SIMD
//     lanes) — bit-identical.
//   - Bcsr2x2 / Bcsr2x2Tile: per block the scalar kernel computes
//     s += (v0*x0 + v1*x1); the vector kernel reproduces exactly that
//     pairing — bit-identical.
//   - DotBcastTile (fused SpMM tile): each of the 4 vector lanes is an
//     independent sequential sum in entry order — bit-identical.
//
// These kernels deliberately use separate multiply and add instructions
// (no FMA contraction), because fusing the rounding step would break the
// bit contract for a negligible win on gather-bound loops.
//
// The one exception is DotGather (CSR row dot-product): it carries eight
// partial sums (two 4-lane vectors) reduced pairwise at row end, and uses
// FMA. Relative to the strictly sequential scalar sum this reassociates
// the addition tree and fuses rounding, so results may differ by a few
// ULPs (the property tests document and enforce a relative tolerance).
// This mirrors the existing Vec-CSR kernel, which already reassociates
// with four scalar accumulators.
//
// # Index trust
//
// The kernels gather x through 32-bit column indices with no bounds
// checks (that is much of the speedup). Callers must guarantee indices
// are in [0, len(x)); every format in internal/formats does so by
// construction from a validated CSR matrix.
package simd

import (
	"os"
	"sync"
	"sync/atomic"
)

// EnvNoSIMD disables the dispatched kernels at process start when set to
// any value other than "" or "0".
const EnvNoSIMD = "SPMV_NOSIMD"

// enabled is the runtime kill switch; true only when accelerated kernels
// are installed AND not switched off.
var enabled atomic.Bool

// hasAccel reports whether accelerated kernels were installed at init.
var hasAccel bool

// level names the installed acceleration tier ("avx2", "scalar").
var level = "scalar"

// width is the SIMD width in float64 lanes of the installed kernels
// (1 when only the scalar path exists).
var width = 1

// features lists the detected CPU SIMD capabilities (detection result,
// independent of what was installed or whether the switch is on).
var features []string

var setMu sync.Mutex

func init() {
	detect() // arch-specific: fills features, hasAccel, level, width, installs pointers
	if hasAccel && !envDisabled() {
		enabled.Store(true)
	}
}

// envDisabled reports the SPMV_NOSIMD state.
func envDisabled() bool {
	v := os.Getenv(EnvNoSIMD)
	return v != "" && v != "0"
}

// Enabled reports whether the dispatched kernels are active. Format
// kernels consult this once per invocation and fall back to their scalar
// loops when false.
func Enabled() bool { return enabled.Load() }

// SetEnabled switches the dispatched kernels on or off at runtime (the
// programmatic twin of SPMV_NOSIMD). Enabling is a no-op on hardware
// without accelerated kernels. It returns the previous state.
func SetEnabled(on bool) bool {
	setMu.Lock()
	defer setMu.Unlock()
	prev := enabled.Load()
	enabled.Store(on && hasAccel)
	return prev
}

// Available reports whether accelerated kernels exist for this CPU,
// regardless of the current switch state.
func Available() bool { return hasAccel }

// Level names the active dispatch tier: the installed accelerator level
// ("avx2") while enabled, "scalar" otherwise.
func Level() string {
	if Enabled() {
		return level
	}
	return "scalar"
}

// InstalledLevel names the accelerator tier installed at init, ignoring
// the kill switch ("scalar" when none was).
func InstalledLevel() string { return level }

// Width returns the SIMD width in float64 lanes of the active dispatch:
// the hardware vector width while enabled, 1 otherwise. Format defaults
// (e.g. the SELL-C-sigma chunk size) and the host device model key off
// this.
func Width() int {
	if Enabled() {
		return width
	}
	return 1
}

// Features returns the detected CPU SIMD feature names (e.g. "avx2",
// "fma", "avx512f"), independent of the kill switch. Empty on
// architectures without detection.
func Features() []string {
	out := make([]string, len(features))
	copy(out, features)
	return out
}

// KernelInfo describes one dispatch-table entry for reporting: which
// kernel, and which implementation serves it right now.
type KernelInfo struct {
	Kernel string `json:"kernel"`
	Impl   string `json:"impl"`
}

// kernelNames lists the dispatchable kernels in stable report order.
var kernelNames = []string{
	"csr.dot-gather",
	"ell.axpy-gather",
	"sellcs.lane-dot4",
	"bcsr.2x2",
	"multi.bcast-tile4",
	"bcsr.2x2-tile4",
}

// Table returns the active dispatch table, one row per kernel, for CLI
// and BENCH artifact reporting — the record that makes a measurement
// attributable to the host ISA.
func Table() []KernelInfo {
	impl := Level()
	out := make([]KernelInfo, len(kernelNames))
	for i, n := range kernelNames {
		out[i] = KernelInfo{Kernel: n, Impl: impl}
	}
	return out
}

// --- dispatched entry points -------------------------------------------
//
// Each wrapper validates the degenerate cases the assembly does not
// (empty inputs) and forwards to the installed implementation. The
// pointers are installed once at init; SetEnabled gates callers, not the
// table, so a mid-flight toggle never races a nil pointer.

// The kernels take only pointers into long-lived format storage and
// return their accumulator tiles BY VALUE ([4]/[8]float64). That shape is
// deliberate: an indirect call is an escape-analysis barrier, so a
// pointer-out parameter would force every caller's stack-resident register
// tile to the heap — one allocation per row tile. Value returns keep the
// hot loops allocation-free.

// DotGather returns sum(val[i] * x[idx[i]]). Multi-accumulator with FMA:
// reassociates relative to a sequential sum (see the package contract).
func DotGather(val []float64, idx []int32, x []float64) float64 {
	n := len(val)
	if n == 0 {
		return 0
	}
	_ = idx[n-1]
	return dotGather(&val[0], &idx[0], &x[0], n)
}

// AxpyGather computes y[j] += val[j] * x[idx[j]] for every j.
// Bit-identical to the scalar loop.
func AxpyGather(y, val []float64, idx []int32, x []float64) {
	n := len(y)
	if n == 0 {
		return
	}
	_ = val[n-1]
	_ = idx[n-1]
	axpyGather(&y[0], &val[0], &idx[0], &x[0], n)
}

// LaneDot4 returns four independent lane sums over a strided slab:
// sums[l] = sum over j in [0, n) of val[j*stride+l] * x[idx[j*stride+l]],
// l in [0, 4). val and idx must hold at least (n-1)*stride+4 entries.
// Bit-identical to the scalar lane loop.
func LaneDot4(val []float64, idx []int32, x []float64, stride, n int) [4]float64 {
	if n == 0 {
		return [4]float64{}
	}
	_ = val[(n-1)*stride+3]
	_ = idx[(n-1)*stride+3]
	return laneDot4(&val[0], &idx[0], &x[0], stride, n)
}

// Bcsr2x2 accumulates one BCSR block row of interior 2x2 blocks:
// s0 += v0*x0 + v1*x1, s1 += v2*x0 + v3*x1 per block, with x0, x1 read at
// column blkCol[b]*2. Bit-identical to the scalar block loop.
func Bcsr2x2(val []float64, blkCol []int32, x []float64, n int) (s0, s1 float64) {
	if n == 0 {
		return 0, 0
	}
	_ = val[n*4-1]
	_ = blkCol[n-1]
	return bcsr2x2(&val[0], &blkCol[0], &x[0], n)
}

// DotBcastTile returns a 4-vector SpMM register tile:
// dst[t] = sum over j in [0, n) of val[j*stride] * x[idx[j*stride]*k + t],
// t in [0, 4). x must be pre-offset to the tile start (so its element 0 is
// vector lane 0 of the tile). Bit-identical to the scalar tile loop.
func DotBcastTile(val []float64, idx []int32, x []float64, stride, n, k int) [4]float64 {
	if n == 0 {
		return [4]float64{}
	}
	_ = val[(n-1)*stride]
	_ = idx[(n-1)*stride]
	return dotBcastTile(&val[0], &idx[0], &x[0], stride, n, k)
}

// Bcsr2x2Tile returns a 2-row x 4-vector BCSR SpMM tile over n interior
// 2x2 blocks: lo is block row 0's tile, hi row 1's. x must be pre-offset
// to the tile start. Bit-identical to the scalar tile loop.
func Bcsr2x2Tile(val []float64, blkCol []int32, x []float64, n, k int) (lo, hi [4]float64) {
	if n == 0 {
		return [4]float64{}, [4]float64{}
	}
	_ = val[n*4-1]
	_ = blkCol[n-1]
	return bcsr2x2Tile(&val[0], &blkCol[0], &x[0], n, k)
}
