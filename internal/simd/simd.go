// Package simd provides vectorized micro-kernels for the hottest SpMV
// inner loops — the CSR row dot-product, the ELL/SELL-C-sigma slab sweeps,
// the BCSR 2x2 tile, and the k-wide broadcast tiles of the fused SpMM
// kernels — with runtime CPU-feature detection and per-kernel
// function-pointer dispatch across a ladder of tiers.
//
// # Dispatch tiers
//
// At init the package probes the CPU (CPUID/XGETBV on amd64) and installs
// the widest kernel implementation the hardware and OS support into a
// function-pointer table, per kernel: scalar < avx2 < avx512. The AVX-512
// tier is *calibrated* rather than assumed — 512-bit execution can
// downclock some parts, so each ZMM kernel is micro-timed against its AVX2
// counterpart at install and only replaces it when it actually wins
// ("win-or-stay-at-AVX2"). The format packages consult Enabled() once per
// kernel invocation and branch to either the dispatched kernels here or
// their original scalar loops, so a disabled dispatch pays zero
// indirection.
//
// # Caps and the kill switch
//
// SPMV_SIMD_LEVEL caps the tier: "scalar", "avx2" or "avx512". "scalar"
// forces the portable path, "avx2" stops the ladder below ZMM, and
// "avx512" force-installs the full AVX-512 tier without calibration (the
// operator asked for it; benches and equivalence tests use this to pin the
// tier under measurement). Unset or unrecognized values mean "auto":
// widest detected, calibrated. SetLevel is the programmatic twin and is
// how the three-way bench switches tiers mid-process; it must not race
// in-flight multiplies (quiesce kernels first — it swaps the table).
//
// SPMV_NOSIMD=1 (or SetEnabled(false)) is the orthogonal kill switch: the
// table stays installed but every caller routes back to the scalar
// reference path, which is the correctness anchor the equivalence tests
// pin against.
//
// # Accumulation-order contract
//
// The dispatched kernels are drop-in replacements at the bit level
// wherever the scalar kernel's accumulation order survives vectorization:
//
//   - AxpyGather (ELL column sweep): each y[j] receives exactly one
//     mul-then-add per slab column, in the same column order — results are
//     bit-identical to the scalar sweep at every tier.
//   - LaneDot4 / LaneDot8 (SELL-C-sigma slab): each lane's sum accumulates
//     sequentially in ascending column order (lanes are independent SIMD
//     lanes) — bit-identical.
//   - Bcsr2x2Tile / Bcsr2x2Tile8: per block and lane the scalar kernel
//     computes d += (v0*x0 + v1*x1); the vector kernels reproduce exactly
//     that pairing — bit-identical.
//   - DotBcastTile / DotBcastTile8 (fused SpMM tiles): each vector lane is
//     an independent sequential sum in entry order — bit-identical.
//
// These kernels deliberately use separate multiply and add instructions
// (no FMA contraction), because fusing the rounding step would break the
// bit contract for a negligible win on gather-bound loops.
//
// Two kernels reassociate: DotGather (CSR row dot-product) carries
// multiple partial sums reduced pairwise at row end and uses FMA at every
// accelerated tier (8 partials on AVX2, 16 on AVX-512); and the AVX-512
// Bcsr2x2 processes four blocks per iteration with FMA, unlike its
// bit-identical AVX2 counterpart. Both may differ from the sequential
// scalar sum by a few ULPs; the property tests grant exactly these
// kernels a relative tolerance (see KernelImpl, which lets the test
// harness key the tolerance off the installed implementation).
//
// # Index trust
//
// The kernels gather x through 32-bit column indices with no bounds
// checks (that is much of the speedup). Callers must guarantee indices
// are in [0, len(x)); every format in internal/formats does so by
// construction from a validated CSR matrix.
package simd

import (
	"os"
	"strings"
	"sync"
	"sync/atomic"
)

// EnvNoSIMD disables the dispatched kernels at process start when set to
// any value other than "" or "0".
const EnvNoSIMD = "SPMV_NOSIMD"

// EnvLevel caps the dispatch tier at process start: "scalar", "avx2" or
// "avx512" (the generalization of SPMV_NOSIMD; unset means auto).
const EnvLevel = "SPMV_SIMD_LEVEL"

// enabled is the runtime kill switch; true only when accelerated kernels
// are installed AND not switched off.
var enabled atomic.Bool

// hasAccel reports whether accelerated kernels are currently installed.
var hasAccel bool

// level names the widest installed acceleration tier ("avx512", "avx2",
// "scalar").
var level = "scalar"

// width is the SIMD width in float64 lanes of the widest installed tier
// (1 when only the scalar path exists).
var width = 1

// detected names the widest tier the hardware and OS support, independent
// of any cap ("scalar" off amd64).
var detected = "scalar"

// curCap is the cap currently applied to the table: "auto", "scalar",
// "avx2" or "avx512" (SetLevel's restore token).
var curCap = "auto"

// features lists the detected CPU SIMD capabilities (detection result,
// independent of what was installed or whether the switch is on).
var features []string

// Kernel indices into kernelNames / kernelImpl. The three *8 entries are
// the wide-tier twins of the 4-lane kernels: on AVX2 they dispatch to
// bit-identical two-halves compositions, on AVX-512 to native ZMM code.
const (
	kDotGather = iota
	kAxpyGather
	kLaneDot4
	kLaneDot8
	kBcsr2x2
	kTile4
	kTile8
	kBcsrTile4
	kBcsrTile8
	nKernels
)

// kernelNames lists the dispatchable kernels in stable report order
// (aligned with the k* indices above).
var kernelNames = [nKernels]string{
	"csr.dot-gather",
	"ell.axpy-gather",
	"sellcs.lane-dot4",
	"sellcs.lane-dot8",
	"bcsr.2x2",
	"multi.bcast-tile4",
	"multi.bcast-tile8",
	"bcsr.2x2-tile4",
	"bcsr.2x2-tile8",
}

// kernelImpl records which implementation each table entry points at.
var kernelImpl = func() (ki [nKernels]string) {
	for i := range ki {
		ki[i] = "scalar"
	}
	return ki
}()

var setMu sync.Mutex

func init() {
	detect() // arch-specific: fills features and detected
	cap := envCap()
	curCap = cap
	install(cap) // arch-specific: builds the table under the cap
	if hasAccel && !envDisabled() && cap != "scalar" {
		enabled.Store(true)
	}
}

// envDisabled reports the SPMV_NOSIMD state.
func envDisabled() bool {
	v := os.Getenv(EnvNoSIMD)
	return v != "" && v != "0"
}

// envCap parses SPMV_SIMD_LEVEL ("auto" when unset or unrecognized).
func envCap() string {
	switch v := strings.ToLower(os.Getenv(EnvLevel)); v {
	case "scalar", "avx2", "avx512":
		return v
	}
	return "auto"
}

// Enabled reports whether the dispatched kernels are active. Format
// kernels consult this once per invocation and fall back to their scalar
// loops when false.
func Enabled() bool { return enabled.Load() }

// SetEnabled switches the dispatched kernels on or off at runtime (the
// programmatic twin of SPMV_NOSIMD). Enabling is a no-op on hardware
// without accelerated kernels. It returns the previous state.
func SetEnabled(on bool) bool {
	setMu.Lock()
	defer setMu.Unlock()
	prev := enabled.Load()
	enabled.Store(on && hasAccel)
	return prev
}

// SetLevel re-caps the dispatch tier at runtime: "scalar", "avx2",
// "avx512" or "auto" (widest detected, calibrated — the boot default).
// Caps above the detected capability clamp to it; "avx512" skips
// calibration and force-installs every ZMM kernel the hardware supports.
// It returns the previous cap token, so SetLevel(SetLevel("avx2"))
// restores the prior table exactly. SetLevel swaps the dispatch table:
// callers must quiesce in-flight kernels first (the bench and the
// equivalence sweep switch tiers only between runs).
func SetLevel(cap string) string {
	switch cap {
	case "auto", "scalar", "avx2", "avx512":
	default:
		cap = "auto"
	}
	setMu.Lock()
	defer setMu.Unlock()
	prev := curCap
	curCap = cap
	install(cap)
	enabled.Store(hasAccel && cap != "scalar")
	return prev
}

// Available reports whether accelerated kernels exist for this CPU under
// the current cap, regardless of the kill-switch state.
func Available() bool { return hasAccel }

// Level names the active dispatch tier: the widest installed accelerator
// level ("avx512", "avx2") while enabled, "scalar" otherwise.
func Level() string {
	if Enabled() {
		return level
	}
	return "scalar"
}

// InstalledLevel names the widest accelerator tier currently installed,
// ignoring the kill switch ("scalar" when none is).
func InstalledLevel() string { return level }

// DetectedLevel names the widest tier the hardware and OS support,
// independent of caps and switches. The journal host fingerprint keys off
// this, not Level(): a capped process must still recognize journals
// written by an uncapped one on the same machine.
func DetectedLevel() string { return detected }

// Width returns the SIMD width in float64 lanes of the active dispatch:
// the widest installed tier's vector width while enabled, 1 otherwise.
// Format defaults (e.g. the SELL-C-sigma chunk size) and the host device
// model key off this.
func Width() int {
	if Enabled() {
		return width
	}
	return 1
}

// Features returns the detected CPU SIMD feature names (e.g. "avx2",
// "fma", "avx512f"), independent of the kill switch. Empty on
// architectures without detection.
func Features() []string {
	out := make([]string, len(features))
	copy(out, features)
	return out
}

// KernelInfo describes one dispatch-table entry for reporting: which
// kernel, and which implementation serves it right now.
type KernelInfo struct {
	Kernel string `json:"kernel"`
	Impl   string `json:"impl"`
}

// Table returns the active dispatch table, one row per kernel, for CLI,
// BENCH artifact and /v1/info reporting — the record that makes a
// measurement attributable to the host ISA. With the kill switch off
// every entry reports "scalar" (that is what callers run).
func Table() []KernelInfo {
	out := make([]KernelInfo, nKernels)
	on := Enabled()
	for i, n := range kernelNames {
		impl := "scalar"
		if on {
			impl = kernelImpl[i]
		}
		out[i] = KernelInfo{Kernel: n, Impl: impl}
	}
	return out
}

// KernelImpl reports the implementation serving the named kernel right
// now ("scalar" when dispatch is off or the kernel is unknown). The
// equivalence harness keys its tolerance policy off this: e.g. "bcsr.2x2"
// is bit-identical on AVX2 but reassociates on AVX-512.
func KernelImpl(kernel string) string {
	if !Enabled() {
		return "scalar"
	}
	for i, n := range kernelNames {
		if n == kernel {
			return kernelImpl[i]
		}
	}
	return "scalar"
}

// --- dispatched entry points -------------------------------------------
//
// Each wrapper validates the degenerate cases the assembly does not
// (empty inputs) and forwards to the installed implementation. The
// pointers are installed before callers can observe Enabled()==true;
// SetEnabled gates callers, not the table, so a mid-flight toggle never
// races a nil pointer.

// The kernels take only pointers into long-lived format storage and
// return their accumulator tiles BY VALUE ([4]/[8]float64). That shape is
// deliberate: an indirect call is an escape-analysis barrier, so a
// pointer-out parameter would force every caller's stack-resident register
// tile to the heap — one allocation per row tile. Value returns keep the
// hot loops allocation-free.

// DotGather returns sum(val[i] * x[idx[i]]). Multi-accumulator with FMA:
// reassociates relative to a sequential sum (see the package contract).
func DotGather(val []float64, idx []int32, x []float64) float64 {
	n := len(val)
	if n == 0 {
		return 0
	}
	_ = idx[n-1]
	return dotGather(&val[0], &idx[0], &x[0], n)
}

// AxpyGather computes y[j] += val[j] * x[idx[j]] for every j.
// Bit-identical to the scalar loop.
func AxpyGather(y, val []float64, idx []int32, x []float64) {
	n := len(y)
	if n == 0 {
		return
	}
	_ = val[n-1]
	_ = idx[n-1]
	axpyGather(&y[0], &val[0], &idx[0], &x[0], n)
}

// LaneDot4 returns four independent lane sums over a strided slab:
// sums[l] = sum over j in [0, n) of val[j*stride+l] * x[idx[j*stride+l]],
// l in [0, 4). val and idx must hold at least (n-1)*stride+4 entries.
// Bit-identical to the scalar lane loop.
func LaneDot4(val []float64, idx []int32, x []float64, stride, n int) [4]float64 {
	if n == 0 {
		return [4]float64{}
	}
	_ = val[(n-1)*stride+3]
	_ = idx[(n-1)*stride+3]
	return laneDot4(&val[0], &idx[0], &x[0], stride, n)
}

// LaneDot8 is the 8-lane twin of LaneDot4 (l in [0, 8); val and idx must
// hold at least (n-1)*stride+8 entries). Bit-identical to the scalar lane
// loop at every tier: the AVX2 fallback runs two 4-lane halves.
func LaneDot8(val []float64, idx []int32, x []float64, stride, n int) [8]float64 {
	if n == 0 {
		return [8]float64{}
	}
	_ = val[(n-1)*stride+7]
	_ = idx[(n-1)*stride+7]
	return laneDot8(&val[0], &idx[0], &x[0], stride, n)
}

// Bcsr2x2 accumulates one BCSR block row of interior 2x2 blocks:
// s0 += v0*x0 + v1*x1, s1 += v2*x0 + v3*x1 per block, with x0, x1 read at
// column blkCol[b]*2. Bit-identical to the scalar block loop on AVX2; the
// AVX-512 implementation processes four blocks per iteration and
// reassociates (KernelImpl("bcsr.2x2") tells the tests which applies).
func Bcsr2x2(val []float64, blkCol []int32, x []float64, n int) (s0, s1 float64) {
	if n == 0 {
		return 0, 0
	}
	_ = val[n*4-1]
	_ = blkCol[n-1]
	return bcsr2x2(&val[0], &blkCol[0], &x[0], n)
}

// DotBcastTile returns a 4-vector SpMM register tile:
// dst[t] = sum over j in [0, n) of val[j*stride] * x[idx[j*stride]*k + t],
// t in [0, 4). x must be pre-offset to the tile start (so its element 0 is
// vector lane 0 of the tile). Bit-identical to the scalar tile loop.
func DotBcastTile(val []float64, idx []int32, x []float64, stride, n, k int) [4]float64 {
	if n == 0 {
		return [4]float64{}
	}
	_ = val[(n-1)*stride]
	_ = idx[(n-1)*stride]
	return dotBcastTile(&val[0], &idx[0], &x[0], stride, n, k)
}

// DotBcastTile8 is the 8-vector twin of DotBcastTile (t in [0, 8); the
// tile must have 8 live lanes). Bit-identical to the scalar tile loop at
// every tier.
func DotBcastTile8(val []float64, idx []int32, x []float64, stride, n, k int) [8]float64 {
	if n == 0 {
		return [8]float64{}
	}
	_ = val[(n-1)*stride]
	_ = idx[(n-1)*stride]
	return dotBcastTile8(&val[0], &idx[0], &x[0], stride, n, k)
}

// Bcsr2x2Tile returns a 2-row x 4-vector BCSR SpMM tile over n interior
// 2x2 blocks: lo is block row 0's tile, hi row 1's. x must be pre-offset
// to the tile start. Bit-identical to the scalar tile loop.
func Bcsr2x2Tile(val []float64, blkCol []int32, x []float64, n, k int) (lo, hi [4]float64) {
	if n == 0 {
		return [4]float64{}, [4]float64{}
	}
	_ = val[n*4-1]
	_ = blkCol[n-1]
	return bcsr2x2Tile(&val[0], &blkCol[0], &x[0], n, k)
}

// Bcsr2x2Tile8 is the 2-row x 8-vector twin of Bcsr2x2Tile. Bit-identical
// to the scalar tile loop at every tier.
func Bcsr2x2Tile8(val []float64, blkCol []int32, x []float64, n, k int) (lo, hi [8]float64) {
	if n == 0 {
		return [8]float64{}, [8]float64{}
	}
	_ = val[n*4-1]
	_ = blkCol[n-1]
	return bcsr2x2Tile8(&val[0], &blkCol[0], &x[0], n, k)
}
