package simd

import (
	"math"
	"math/rand"
	"testing"
)

// The kernel-level property tests: every dispatched kernel against its
// scalar reference, across sizes that hit every tail path. Order-preserving
// kernels must match bit-for-bit; DotGather gets the documented relative
// tolerance (it reassociates and fuses rounding).

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randIdx(rng *rand.Rand, n, bound int) []int32 {
	c := make([]int32, n)
	for i := range c {
		c[i] = int32(rng.Intn(bound))
	}
	return c
}

func TestDotGatherMatchesScalar(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(1))
	x := randVec(rng, 999)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 13, 16, 100, 1023} {
		val := randVec(rng, n)
		idx := randIdx(rng, n, len(x))
		got := DotGather(val, idx, x)
		want := dotGatherScalar(ptr(val), ptrI(idx), &x[0], n)
		if n == 0 {
			want = 0
		}
		if !closeULP(got, want, 4) {
			t.Errorf("n=%d: DotGather=%v scalar=%v (diff %g)", n, got, want, got-want)
		}
	}
}

func TestAxpyGatherBitIdentical(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(2))
	x := randVec(rng, 777)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 64, 101} {
		val := randVec(rng, n)
		idx := randIdx(rng, n, len(x))
		y1 := randVec(rng, n)
		y2 := append([]float64(nil), y1...)
		AxpyGather(y1, val, idx, x)
		if n > 0 {
			axpyGatherScalar(&y2[0], &val[0], &idx[0], &x[0], n)
		}
		for j := range y1 {
			if y1[j] != y2[j] {
				t.Fatalf("n=%d j=%d: %v != %v", n, j, y1[j], y2[j])
			}
		}
	}
}

func TestLaneDot4BitIdentical(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(3))
	x := randVec(rng, 555)
	for _, stride := range []int{4, 8, 12} {
		for _, n := range []int{0, 1, 2, 17, 63} {
			ln := 4
			if n > 0 {
				ln = (n-1)*stride + 4
			}
			val := randVec(rng, ln)
			idx := randIdx(rng, ln, len(x))
			s1 := LaneDot4(val, idx, x, stride, n)
			var s2 [4]float64
			if n > 0 {
				s2 = laneDot4Scalar(&val[0], &idx[0], &x[0], stride, n)
			}
			if s1 != s2 {
				t.Fatalf("stride=%d n=%d: %v != %v", stride, n, s1, s2)
			}
		}
	}
}

func TestBcsr2x2BitIdentical(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(4))
	const blkCols = 200
	x := randVec(rng, blkCols*2)
	for _, n := range []int{0, 1, 2, 3, 16, 97} {
		val := randVec(rng, n*4)
		bc := randIdx(rng, n, blkCols)
		g0, g1 := Bcsr2x2(val, bc, x, n)
		var w0, w1 float64
		if n > 0 {
			w0, w1 = bcsr2x2Scalar(&val[0], &bc[0], &x[0], n)
		}
		if g0 != w0 || g1 != w1 {
			t.Fatalf("n=%d: (%v,%v) != (%v,%v)", n, g0, g1, w0, w1)
		}
	}
}

func TestDotBcastTileBitIdentical(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(5))
	const cols = 300
	for _, k := range []int{4, 8} {
		x := randVec(rng, cols*k)
		for _, stride := range []int{1, 4} {
			for _, n := range []int{0, 1, 2, 33} {
				ln := 1
				if n > 0 {
					ln = (n-1)*stride + 1
				}
				val := randVec(rng, ln)
				idx := randIdx(rng, ln, cols)
				// tile offset t = k-4: exercises the pre-offset contract
				d1 := DotBcastTile(val, idx, x[k-4:], stride, n, k)
				var d2 [4]float64
				if n > 0 {
					d2 = dotBcastTileScalar(&val[0], &idx[0], &x[k-4], stride, n, k)
				}
				if d1 != d2 {
					t.Fatalf("k=%d stride=%d n=%d: %v != %v", k, stride, n, d1, d2)
				}
			}
		}
	}
}

func TestBcsr2x2TileBitIdentical(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(6))
	const blkCols = 150
	for _, k := range []int{4, 8} {
		x := randVec(rng, blkCols*2*k)
		for _, n := range []int{0, 1, 2, 3, 40} {
			val := randVec(rng, n*4)
			bc := randIdx(rng, n, blkCols)
			lo1, hi1 := Bcsr2x2Tile(val, bc, x[k-4:], n, k)
			var lo2, hi2 [4]float64
			if n > 0 {
				lo2, hi2 = bcsr2x2TileScalar(&val[0], &bc[0], &x[k-4], n, k)
			}
			if lo1 != lo2 || hi1 != hi2 {
				t.Fatalf("k=%d n=%d: (%v,%v) != (%v,%v)", k, n, lo1, hi1, lo2, hi2)
			}
		}
	}
}

func TestKillSwitch(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if Enabled() {
		t.Fatal("Enabled() true after SetEnabled(false)")
	}
	if Level() != "scalar" {
		t.Fatalf("Level() = %q with dispatch off", Level())
	}
	if Width() != 1 {
		t.Fatalf("Width() = %d with dispatch off", Width())
	}
	SetEnabled(true)
	if !Enabled() || Level() == "scalar" || Width() < 2 {
		t.Fatalf("re-enable failed: enabled=%v level=%q width=%d", Enabled(), Level(), Width())
	}
}

func TestTableReportsInstalledLevel(t *testing.T) {
	tab := Table()
	if len(tab) == 0 {
		t.Fatal("empty dispatch table")
	}
	for _, e := range tab {
		if e.Impl != Level() {
			t.Fatalf("kernel %s impl %q != active level %q", e.Kernel, e.Impl, Level())
		}
	}
}

func ptr(v []float64) *float64 {
	if len(v) == 0 {
		return new(float64)
	}
	return &v[0]
}

func ptrI(v []int32) *int32 {
	if len(v) == 0 {
		return new(int32)
	}
	return &v[0]
}

// closeULP accepts a small relative error (the DotGather reassociation
// tolerance).
func closeULP(a, b float64, ulps float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= ulps*scale*0x1p-52
}
