package simd

import (
	"math"
	"math/rand"
	"testing"
)

// The kernel-level property tests: every dispatched kernel against its
// scalar reference, across sizes that hit every tail path. Order-preserving
// kernels must match bit-for-bit; DotGather gets the documented relative
// tolerance (it reassociates and fuses rounding).

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randIdx(rng *rand.Rand, n, bound int) []int32 {
	c := make([]int32, n)
	for i := range c {
		c[i] = int32(rng.Intn(bound))
	}
	return c
}

func TestDotGatherMatchesScalar(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(1))
	x := randVec(rng, 999)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 13, 16, 100, 1023} {
		val := randVec(rng, n)
		idx := randIdx(rng, n, len(x))
		got := DotGather(val, idx, x)
		want := dotGatherScalar(ptr(val), ptrI(idx), &x[0], n)
		if n == 0 {
			want = 0
		}
		if !closeULP(got, want, 4) {
			t.Errorf("n=%d: DotGather=%v scalar=%v (diff %g)", n, got, want, got-want)
		}
	}
}

func TestAxpyGatherBitIdentical(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(2))
	x := randVec(rng, 777)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 64, 101} {
		val := randVec(rng, n)
		idx := randIdx(rng, n, len(x))
		y1 := randVec(rng, n)
		y2 := append([]float64(nil), y1...)
		AxpyGather(y1, val, idx, x)
		if n > 0 {
			axpyGatherScalar(&y2[0], &val[0], &idx[0], &x[0], n)
		}
		for j := range y1 {
			if y1[j] != y2[j] {
				t.Fatalf("n=%d j=%d: %v != %v", n, j, y1[j], y2[j])
			}
		}
	}
}

func TestLaneDot4BitIdentical(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(3))
	x := randVec(rng, 555)
	for _, stride := range []int{4, 8, 12} {
		for _, n := range []int{0, 1, 2, 17, 63} {
			ln := 4
			if n > 0 {
				ln = (n-1)*stride + 4
			}
			val := randVec(rng, ln)
			idx := randIdx(rng, ln, len(x))
			s1 := LaneDot4(val, idx, x, stride, n)
			var s2 [4]float64
			if n > 0 {
				s2 = laneDot4Scalar(&val[0], &idx[0], &x[0], stride, n)
			}
			if s1 != s2 {
				t.Fatalf("stride=%d n=%d: %v != %v", stride, n, s1, s2)
			}
		}
	}
}

func TestBcsr2x2MatchesScalar(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(4))
	const blkCols = 200
	x := randVec(rng, blkCols*2)
	// The AVX-512 implementation processes four blocks per iteration with
	// FMA and reassociates; AVX2 is bit-identical. The installed impl
	// decides which contract applies (not KernelImpl: the kill switch
	// gates format callers, but this test drives the table directly).
	reassoc := kernelImpl[kBcsr2x2] == "avx512"
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 16, 97} {
		val := randVec(rng, n*4)
		bc := randIdx(rng, n, blkCols)
		g0, g1 := Bcsr2x2(val, bc, x, n)
		var w0, w1 float64
		if n > 0 {
			w0, w1 = bcsr2x2Scalar(&val[0], &bc[0], &x[0], n)
		}
		if reassoc {
			if !closeULP(g0, w0, 8) || !closeULP(g1, w1, 8) {
				t.Fatalf("n=%d: (%v,%v) !~ (%v,%v)", n, g0, g1, w0, w1)
			}
		} else if g0 != w0 || g1 != w1 {
			t.Fatalf("n=%d: (%v,%v) != (%v,%v)", n, g0, g1, w0, w1)
		}
	}
}

func TestLaneDot8BitIdentical(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(7))
	x := randVec(rng, 555)
	for _, stride := range []int{8, 16} {
		for _, n := range []int{0, 1, 2, 17, 63} {
			ln := 8
			if n > 0 {
				ln = (n-1)*stride + 8
			}
			val := randVec(rng, ln)
			idx := randIdx(rng, ln, len(x))
			s1 := LaneDot8(val, idx, x, stride, n)
			var s2 [8]float64
			if n > 0 {
				s2 = laneDot8Scalar(&val[0], &idx[0], &x[0], stride, n)
			}
			if s1 != s2 {
				t.Fatalf("stride=%d n=%d: %v != %v", stride, n, s1, s2)
			}
		}
	}
}

func TestDotBcastTile8BitIdentical(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(8))
	const cols = 300
	for _, k := range []int{8, 12} {
		x := randVec(rng, cols*k)
		for _, stride := range []int{1, 4} {
			for _, n := range []int{0, 1, 2, 33} {
				ln := 1
				if n > 0 {
					ln = (n-1)*stride + 1
				}
				val := randVec(rng, ln)
				idx := randIdx(rng, ln, cols)
				d1 := DotBcastTile8(val, idx, x[k-8:], stride, n, k)
				var d2 [8]float64
				if n > 0 {
					d2 = dotBcastTile8Scalar(&val[0], &idx[0], &x[k-8], stride, n, k)
				}
				if d1 != d2 {
					t.Fatalf("k=%d stride=%d n=%d: %v != %v", k, stride, n, d1, d2)
				}
			}
		}
	}
}

func TestBcsr2x2Tile8BitIdentical(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(9))
	const blkCols = 150
	for _, k := range []int{8, 12} {
		x := randVec(rng, blkCols*2*k)
		for _, n := range []int{0, 1, 2, 3, 40} {
			val := randVec(rng, n*4)
			bc := randIdx(rng, n, blkCols)
			lo1, hi1 := Bcsr2x2Tile8(val, bc, x[k-8:], n, k)
			var lo2, hi2 [8]float64
			if n > 0 {
				lo2, hi2 = bcsr2x2Tile8Scalar(&val[0], &bc[0], &x[k-8], n, k)
			}
			if lo1 != lo2 || hi1 != hi2 {
				t.Fatalf("k=%d n=%d: (%v,%v) != (%v,%v)", k, n, lo1, hi1, lo2, hi2)
			}
		}
	}
}

func TestDotBcastTileBitIdentical(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(5))
	const cols = 300
	for _, k := range []int{4, 8} {
		x := randVec(rng, cols*k)
		for _, stride := range []int{1, 4} {
			for _, n := range []int{0, 1, 2, 33} {
				ln := 1
				if n > 0 {
					ln = (n-1)*stride + 1
				}
				val := randVec(rng, ln)
				idx := randIdx(rng, ln, cols)
				// tile offset t = k-4: exercises the pre-offset contract
				d1 := DotBcastTile(val, idx, x[k-4:], stride, n, k)
				var d2 [4]float64
				if n > 0 {
					d2 = dotBcastTileScalar(&val[0], &idx[0], &x[k-4], stride, n, k)
				}
				if d1 != d2 {
					t.Fatalf("k=%d stride=%d n=%d: %v != %v", k, stride, n, d1, d2)
				}
			}
		}
	}
}

func TestBcsr2x2TileBitIdentical(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(6))
	const blkCols = 150
	for _, k := range []int{4, 8} {
		x := randVec(rng, blkCols*2*k)
		for _, n := range []int{0, 1, 2, 3, 40} {
			val := randVec(rng, n*4)
			bc := randIdx(rng, n, blkCols)
			lo1, hi1 := Bcsr2x2Tile(val, bc, x[k-4:], n, k)
			var lo2, hi2 [4]float64
			if n > 0 {
				lo2, hi2 = bcsr2x2TileScalar(&val[0], &bc[0], &x[k-4], n, k)
			}
			if lo1 != lo2 || hi1 != hi2 {
				t.Fatalf("k=%d n=%d: (%v,%v) != (%v,%v)", k, n, lo1, hi1, lo2, hi2)
			}
		}
	}
}

func TestKillSwitch(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if Enabled() {
		t.Fatal("Enabled() true after SetEnabled(false)")
	}
	if Level() != "scalar" {
		t.Fatalf("Level() = %q with dispatch off", Level())
	}
	if Width() != 1 {
		t.Fatalf("Width() = %d with dispatch off", Width())
	}
	SetEnabled(true)
	if !Enabled() || Level() == "scalar" || Width() < 2 {
		t.Fatalf("re-enable failed: enabled=%v level=%q width=%d", Enabled(), Level(), Width())
	}
}

func TestTableReportsTieredImpls(t *testing.T) {
	tab := Table()
	if len(tab) == 0 {
		t.Fatal("empty dispatch table")
	}
	seenActive := false
	for _, e := range tab {
		if tierRank(e.Impl) > tierRank(Level()) {
			t.Fatalf("kernel %s impl %q above active level %q", e.Kernel, e.Impl, Level())
		}
		if e.Impl == Level() {
			seenActive = true
		}
		if e.Impl != KernelImpl(e.Kernel) {
			t.Fatalf("kernel %s: Table impl %q != KernelImpl %q", e.Kernel, e.Impl, KernelImpl(e.Kernel))
		}
	}
	if !seenActive {
		t.Fatalf("no kernel dispatches at the active level %q", Level())
	}
	if !Enabled() {
		for _, e := range tab {
			if e.Impl != "scalar" {
				t.Fatalf("dispatch off but kernel %s reports %q", e.Kernel, e.Impl)
			}
		}
	}
}

// TestSetLevelSweep forces every tier the host supports and pins each one
// against the scalar references on lane-unaligned sizes (n mod 8 in
// 1..7) — the masked-tail contract — then restores the boot cap with the
// returned token.
func TestSetLevelSweep(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	rng := rand.New(rand.NewSource(10))
	x := randVec(rng, 700)
	prev := SetLevel("scalar")
	defer SetLevel(prev)

	tiers := []string{"scalar", "avx2", "avx512"}
	for _, tier := range tiers {
		SetLevel(tier)
		if tierRank(tier) > tierRank(DetectedLevel()) {
			if InstalledLevel() != DetectedLevel() {
				t.Fatalf("cap %q above detected %q: installed %q", tier, DetectedLevel(), InstalledLevel())
			}
		} else if tier == "scalar" {
			if Enabled() || Width() != 1 {
				t.Fatalf("cap scalar: enabled=%v width=%d", Enabled(), Width())
			}
		} else if InstalledLevel() != tier || Level() != tier {
			t.Fatalf("cap %q: installed %q active %q", tier, InstalledLevel(), Level())
		}
		wantWidth := map[string]int{"scalar": 1, "avx2": 4, "avx512": 8}[Level()]
		if Width() != wantWidth {
			t.Fatalf("cap %q: width %d != %d for level %q", tier, Width(), wantWidth, Level())
		}
		for n := 1; n <= 23; n++ { // crosses every tail residue at both tiers
			val := randVec(rng, n)
			idx := randIdx(rng, n, len(x))
			got := DotGather(val, idx, x)
			want := dotGatherScalar(&val[0], &idx[0], &x[0], n)
			// Reassociation error scales with the term magnitudes, not the
			// (possibly cancelling) sum.
			mag := 0.0
			for j, v := range val {
				mag += math.Abs(v * x[idx[j]])
			}
			if math.Abs(got-want) > 1e-14*mag {
				t.Fatalf("cap %q n=%d: DotGather %v != %v", tier, n, got, want)
			}
			y1 := randVec(rng, n)
			y2 := append([]float64(nil), y1...)
			AxpyGather(y1, val, idx, x)
			axpyGatherScalar(&y2[0], &val[0], &idx[0], &x[0], n)
			for j := range y1 {
				if y1[j] != y2[j] {
					t.Fatalf("cap %q n=%d j=%d: AxpyGather %v != %v", tier, n, j, y1[j], y2[j])
				}
			}
		}
	}
}

// TestSetLevelRestoreToken verifies SetLevel(SetLevel(x)) round-trips the
// cap, so tests and the bench can save/restore the boot configuration.
func TestSetLevelRestoreToken(t *testing.T) {
	if !Available() {
		t.Skip("no accelerated kernels on this host")
	}
	origLevel, origWidth := Level(), Width()
	tok := SetLevel("avx2")
	SetLevel(tok)
	if Level() != origLevel || Width() != origWidth {
		t.Fatalf("restore: level %q width %d, want %q %d", Level(), Width(), origLevel, origWidth)
	}
}

func ptr(v []float64) *float64 {
	if len(v) == 0 {
		return new(float64)
	}
	return &v[0]
}

func ptrI(v []int32) *int32 {
	if len(v) == 0 {
		return new(int32)
	}
	return &v[0]
}

// closeULP accepts a small relative error (the DotGather reassociation
// tolerance).
func closeULP(a, b float64, ulps float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= ulps*scale*0x1p-52
}
