// Package stats provides the descriptive statistics the paper's figures
// are built from: five-number summaries for boxplots, MAPE/APE validation
// error metrics, win counting for format comparison, and an ASCII boxplot
// renderer for terminal reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary is a five-number summary plus mean and count, one boxplot.
type Summary struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
}

// Summarize computes the summary of vs. An empty input returns a zero
// Summary with N = 0.
func Summarize(vs []float64) Summary {
	s := Summary{N: len(vs)}
	if len(vs) == 0 {
		return s
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Q1 = Quantile(sorted, 0.25)
	s.Median = Quantile(sorted, 0.5)
	s.Q3 = Quantile(sorted, 0.75)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	return s
}

// Mean returns the arithmetic mean of vs (0 for an empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// slice using linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median is a convenience over Summarize for unsorted input.
func Median(vs []float64) float64 {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	return Quantile(sorted, 0.5)
}

// GeoMean returns the geometric mean of positive values; zero or negative
// entries are skipped.
func GeoMean(vs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// APE returns the absolute percentage error of got against want, in
// percent. A zero want with nonzero got returns +Inf.
func APE(want, got float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want) * 100
}

// MAPE returns the mean APE over paired slices, in percent. It panics on
// length mismatch (a programmer error).
func MAPE(want, got []float64) float64 {
	if len(want) != len(got) {
		panic("stats: MAPE length mismatch")
	}
	if len(want) == 0 {
		return 0
	}
	sum := 0.0
	for i := range want {
		sum += APE(want[i], got[i])
	}
	return sum / float64(len(want))
}

// BestAPE returns the smallest APE between want and any candidate — the
// paper's "APE-best" against the closest-performing friend.
func BestAPE(want float64, candidates []float64) float64 {
	best := math.Inf(1)
	for _, c := range candidates {
		if e := APE(want, c); e < best {
			best = e
		}
	}
	if len(candidates) == 0 {
		return 0
	}
	return best
}

// Winners counts, for each configuration key, how often it achieves the
// maximum value across keys per sample. Samples are maps from key to value;
// missing keys don't participate. Returns win percentages per key over the
// number of samples that had at least one participant.
func Winners(samples []map[string]float64) map[string]float64 {
	wins := map[string]float64{}
	counted := 0
	for _, sample := range samples {
		bestKey := ""
		best := math.Inf(-1)
		for k, v := range sample {
			if v > best || (v == best && k < bestKey) {
				best = v
				bestKey = k
			}
		}
		if bestKey == "" {
			continue
		}
		counted++
		wins[bestKey]++
	}
	if counted == 0 {
		return wins
	}
	for k := range wins {
		wins[k] = wins[k] / float64(counted) * 100
	}
	return wins
}

// Boxplot renders the summary as a fixed-width ASCII gauge spanning
// [lo, hi], e.g. "  |----[==M==]------|  ". Returns a blank gauge when the
// summary is empty or the range is degenerate.
func Boxplot(s Summary, lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	cells := make([]rune, width)
	for i := range cells {
		cells[i] = ' '
	}
	if s.N == 0 || hi <= lo {
		return string(cells)
	}
	at := func(v float64) int {
		t := (v - lo) / (hi - lo)
		p := int(t * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	for i := at(s.Min); i <= at(s.Max); i++ {
		cells[i] = '-'
	}
	for i := at(s.Q1); i <= at(s.Q3); i++ {
		cells[i] = '='
	}
	cells[at(s.Min)] = '|'
	cells[at(s.Max)] = '|'
	cells[at(s.Median)] = 'M'
	return string(cells)
}

// String formats the summary compactly.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g mean=%.3g",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// LogTicks returns human-friendly tick labels for a log-scaled gauge from
// lo to hi, used under boxplot columns in reports.
func LogTicks(lo, hi float64, n int) string {
	if n < 2 || hi <= lo || lo <= 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		v := lo * math.Pow(hi/lo, float64(i)/float64(n-1))
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.3g", v)
	}
	return b.String()
}
