package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("wrong summary %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles %g, %g, want 2, 4", s.Q1, s.Q3)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summary should have N=0")
	}
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Q1 != 7 || s.Q3 != 7 {
		t.Errorf("singleton summary %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Quantile(sorted, 0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %g, want 5", got)
	}
	if got := Quantile(sorted, 0); got != 0 {
		t.Errorf("Quantile(0) = %g", got)
	}
	if got := Quantile(sorted, 1); got != 10 {
		t.Errorf("Quantile(1) = %g", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestMedianUnsorted(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median = %g, want 3", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %g, want 10", got)
	}
	if got := GeoMean([]float64{2, 0, -5}); math.Abs(got-2) > 1e-9 {
		t.Errorf("GeoMean skipping nonpositive = %g, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty GeoMean should be 0")
	}
}

func TestAPE(t *testing.T) {
	if got := APE(100, 110); math.Abs(got-10) > 1e-12 {
		t.Errorf("APE = %g, want 10", got)
	}
	if got := APE(0, 0); got != 0 {
		t.Errorf("APE(0,0) = %g", got)
	}
	if !math.IsInf(APE(0, 5), 1) {
		t.Error("APE with zero want should be +Inf")
	}
}

func TestMAPE(t *testing.T) {
	got := MAPE([]float64{100, 200}, []float64{110, 180})
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("MAPE = %g, want 10", got)
	}
	if MAPE(nil, nil) != 0 {
		t.Error("empty MAPE should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}

func TestBestAPE(t *testing.T) {
	got := BestAPE(100, []float64{50, 104, 200})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("BestAPE = %g, want 4", got)
	}
	if BestAPE(100, nil) != 0 {
		t.Error("no candidates should give 0")
	}
}

func TestWinners(t *testing.T) {
	samples := []map[string]float64{
		{"a": 3, "b": 1},
		{"a": 1, "b": 2},
		{"a": 5, "b": 4},
		{},
	}
	w := Winners(samples)
	if math.Abs(w["a"]-200.0/3) > 1e-9 {
		t.Errorf("a wins %.1f%%, want 66.7%%", w["a"])
	}
	if math.Abs(w["b"]-100.0/3) > 1e-9 {
		t.Errorf("b wins %.1f%%, want 33.3%%", w["b"])
	}
}

func TestWinnersTieBreaksDeterministically(t *testing.T) {
	samples := []map[string]float64{{"x": 1, "y": 1}}
	w := Winners(samples)
	if w["x"] != 100 || w["y"] != 0 {
		t.Errorf("tie should go to the lexicographically first key: %v", w)
	}
}

func TestBoxplotRendering(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	plot := Boxplot(s, 0, 6, 40)
	if len(plot) != 40 {
		t.Fatalf("width %d, want 40", len(plot))
	}
	if !strings.Contains(plot, "M") || !strings.Contains(plot, "=") || !strings.Contains(plot, "|") {
		t.Errorf("boxplot missing glyphs: %q", plot)
	}
	if blank := Boxplot(Summary{}, 0, 1, 20); strings.TrimSpace(blank) != "" {
		t.Errorf("empty summary should render blank, got %q", blank)
	}
}

func TestSummaryString(t *testing.T) {
	if Summarize(nil).String() != "n=0" {
		t.Error("empty summary string")
	}
	if !strings.Contains(Summarize([]float64{1}).String(), "med=1") {
		t.Error("summary string missing median")
	}
}

func TestLogTicks(t *testing.T) {
	ticks := LogTicks(1, 100, 3)
	if !strings.Contains(ticks, "10") {
		t.Errorf("log ticks %q should include the geometric midpoint", ticks)
	}
	if LogTicks(0, 100, 3) != "" || LogTicks(1, 1, 3) != "" {
		t.Error("degenerate ranges should give empty ticks")
	}
}

// Property: min <= q1 <= median <= q3 <= max and mean within [min, max].
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Drop non-finite values and magnitudes whose sum overflows.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e300 {
				vs = append(vs, v/1e10)
			}
		}
		s := Summarize(vs)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
