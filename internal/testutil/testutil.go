// Package testutil is the shared randomized-equivalence harness used by
// the format, SIMD, multi-vector and updatable-matrix test suites: one
// set of matrix generators covering the structural corner cases, one
// dense/CSR reference to compare against, and one tolerance policy
// deciding how close "equal" has to be for each kernel family.
//
// The package deliberately does NOT import internal/formats: the formats
// package's own in-package tests use this harness, so an import would
// cycle. Kernels under test are passed through the minimal SpMVer
// interface and format names travel as strings.
package testutil

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/simd"
)

// SpMVer is the minimal kernel surface the harness needs from a format:
// the serial reference product. Every formats.Format satisfies it.
type SpMVer interface {
	SpMV(x, y []float64)
}

// ---------------------------------------------------------------------------
// Tolerance policy
// ---------------------------------------------------------------------------

// TolSmall is the absolute tolerance for the small reference matrices:
// their row sums involve a handful of O(1) terms, so anything beyond
// accumulated rounding is a real bug.
const TolSmall = 1e-9

// TolEngine is the absolute tolerance for the engine-sized matrices,
// whose longer rows accumulate more reassociation error across worker
// boundaries and register tiles.
const TolEngine = 1e-8

// reassocFormats are the formats whose SIMD kernels are allowed a small
// relative tolerance instead of bit equality: the Vec-CSR row dot product
// (and MKL-IE, which adopts the vectorized row kernel) reassociates into
// gather+FMA partial sums. Every other kernel preserves the scalar
// accumulation order per output element and must match bit for bit.
var reassocFormats = map[string]bool{"Vec-CSR": true, "MKL-IE": true}

// Reassoc reports whether the named format's vector kernels are allowed
// the relative tolerance of EqualOrClose. The policy is partly dynamic:
// BCSR's block kernel is bit-identical on the scalar and AVX2 tiers but
// reassociates on AVX-512 (four blocks per FMA iteration), so BCSR joins
// the tolerant set exactly when that implementation is the one dispatched.
func Reassoc(name string) bool {
	if reassocFormats[name] {
		return true
	}
	if name == "BCSR" {
		return simd.KernelImpl("bcsr.2x2") == "avx512"
	}
	return false
}

// EqualOrClose compares two product vectors under the dispatch-equivalence
// policy: bit-for-bit equality, except that formats in the reassociation
// set (see Reassoc) get a 1e-12 relative tolerance. On failure it returns
// the first offending index and false.
func EqualOrClose(name string, got, want []float64) (int, bool) {
	reassoc := Reassoc(name)
	for i := range got {
		if got[i] == want[i] {
			continue
		}
		if !reassoc {
			return i, false
		}
		diff := math.Abs(got[i] - want[i])
		scale := math.Max(math.Abs(got[i]), math.Abs(want[i]))
		if diff > 1e-12*scale {
			return i, false
		}
	}
	return 0, true
}

// MaxAbsDiff returns the largest elementwise absolute difference.
func MaxAbsDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// AnyNaN reports whether the vector contains a NaN (kernels fill y with
// NaN before a parallel run to prove every row is written).
func AnyNaN(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// CheckClose fails the test when got and want differ by more than tol in
// any element, or when got contains a NaN.
func CheckClose(t *testing.T, label string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	if d := MaxAbsDiff(got, want); d > tol || AnyNaN(got) {
		t.Errorf("%s: differs from reference by %g (NaN=%v)", label, d, AnyNaN(got))
	}
}

// ---------------------------------------------------------------------------
// Matrix generators
// ---------------------------------------------------------------------------

// Matrices returns the small reference set exercising the structural
// corner cases: empty rows, dense rows, skew, banding, single row/column,
// plus one feature-controlled generated matrix.
func Matrices(t *testing.T) map[string]*matrix.CSR {
	t.Helper()
	ms := map[string]*matrix.CSR{
		"identity":    matrix.Identity(64),
		"tridiagonal": matrix.Tridiagonal(100, 2, -1),
		"laplacian2d": matrix.Laplacian2D(12, 9),
		"random":      matrix.Random(83, 71, 0.1, 3),
		"denser":      matrix.Random(40, 40, 0.4, 4),
		"singlerow":   matrix.RandomRowSizes(1, 50, []int{20}, 5),
		"singlecol":   matrix.Random(50, 1, 0.8, 6),
		"skewed":      matrix.RandomRowSizes(60, 200, SkewedSizes(60, 120), 7),
		"emptyrows":   WithEmptyRows(t),
		"tiny":        matrix.Identity(1),
	}
	g, err := gen.Generate(gen.Params{
		Rows: 500, Cols: 500, AvgNNZPerRow: 12, StdNNZPerRow: 4,
		SkewCoeff: 20, BWScaled: 0.4, CrossRowSim: 0.4, AvgNumNeigh: 0.8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms["generated"] = g
	return ms
}

// EngineMatrices returns matrices large enough that exec.Workers keeps
// multi-worker counts (the Matrices set all takes the serial fast path),
// and diverse enough to cross every kernel's special cases: skew for the
// carry logic, giant rows for the wide vectorized path, and a banded
// matrix that DIA accepts.
func EngineMatrices(t *testing.T) map[string]*matrix.CSR {
	t.Helper()
	ms := map[string]*matrix.CSR{
		"banded": matrix.Tridiagonal(20000, 2, -1),
	}
	g, err := gen.Generate(gen.Params{
		Rows: 30000, Cols: 30000, AvgNNZPerRow: 12, StdNNZPerRow: 4,
		SkewCoeff: 50, BWScaled: 0.3, CrossRowSim: 0.4, AvgNumNeigh: 0.8, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms["generated"] = g

	// A few giant rows dominate: exercises merge-path row splitting, COO
	// whole-chunk carries, and the wide vectorized row path.
	sizes := make([]int, 1500)
	for i := range sizes {
		sizes[i] = 6
	}
	sizes[0] = 2000
	sizes[700] = 1200
	sizes[1499] = 800
	ms["longrows"] = matrix.RandomRowSizes(1500, 2500, sizes, 22)
	return ms
}

// SIMDEquivMatrices returns the dispatch-equivalence pair: a skewed
// general matrix (gather tails, SELL chunk variation, HYB spill) and an
// odd-dimension banded one (BCSR edge blocks past the column bound,
// DIA-friendly structure).
func SIMDEquivMatrices(t *testing.T) map[string]*matrix.CSR {
	t.Helper()
	skewed, err := gen.Generate(gen.Params{
		Rows: 2000, Cols: 2000, AvgNNZPerRow: 14, StdNNZPerRow: 5,
		SkewCoeff: 10, BWScaled: 0.4, CrossRowSim: 0.4, AvgNumNeigh: 1.2, Seed: 77,
	})
	if err != nil {
		t.Fatalf("generate skewed: %v", err)
	}
	banded, err := gen.Generate(gen.Params{
		Rows: 1997, Cols: 1997, AvgNNZPerRow: 9, StdNNZPerRow: 2,
		SkewCoeff: 1, BWScaled: 0.02, CrossRowSim: 0.8, AvgNumNeigh: 1.8, Seed: 78,
	})
	if err != nil {
		t.Fatalf("generate banded: %v", err)
	}
	return map[string]*matrix.CSR{"skewed": skewed, "banded": banded}
}

// UnalignedTailMatrices returns matrices whose row lengths are
// deliberately lane-unaligned — every row length is nonzero mod 8 (and
// most are nonzero mod 4), crossing the SIMD dispatch cutoff from both
// sides — so the masked-tail paths of the 8-lane tier and the scalar
// remainders of the 4-lane tier are exercised on every row, not just the
// odd straggler.
func UnalignedTailMatrices(t *testing.T) map[string]*matrix.CSR {
	t.Helper()
	const rows = 900
	sizes := make([]int, rows)
	for i := range sizes {
		sizes[i] = 8*(i%4) + i%7 + 1 // 1..31, mod 8 in {1..7}
	}
	ms := map[string]*matrix.CSR{
		"tails": matrix.RandomRowSizes(rows, 1200, sizes, 91),
	}
	// A long-row variant: lengths straddle the 8/16-group boundaries of
	// the gather kernels (odd residues at every multiple of 8 up to 77).
	long := make([]int, 300)
	for i := range long {
		long[i] = 8*(i%9) + 2*(i%3) + 1
	}
	ms["longtails"] = matrix.RandomRowSizes(300, 700, long, 92)
	return ms
}

// Degenerate returns the empty and near-empty shapes every kernel must
// survive: no nonzeros, single entries, and empty-row runs at the edges.
func Degenerate() map[string]*matrix.CSR {
	ms := map[string]*matrix.CSR{
		"empty-5x7": matrix.NewCOO(5, 7, 0).ToCSR(),
	}
	o := matrix.NewCOO(1, 1, 0)
	o.Append(0, 0, 2.5)
	ms["single-1x1"] = o.ToCSR()
	o = matrix.NewCOO(40, 40, 0)
	for _, r := range []int32{3, 19, 20, 21, 39} {
		for c := int32(0); c < 5; c++ {
			o.Append(r, (c*7+r)%40, float64(r)+0.5)
		}
	}
	ms["emptyrows"] = o.ToCSR()
	return ms
}

// SkewedSizes returns a row-size profile with two dominant rows over a
// floor of singletons — the shape that stresses balancing and carries.
func SkewedSizes(rows, max int) []int {
	sizes := make([]int, rows)
	for i := range sizes {
		sizes[i] = 1
	}
	sizes[0] = max
	sizes[rows/2] = max / 2
	return sizes
}

// UniformSizes returns a constant row-size profile.
func UniformSizes(rows, n int) []int {
	s := make([]int, rows)
	for i := range s {
		s[i] = n
	}
	return s
}

// WithEmptyRows returns a matrix whose rows 1,2 mod 3 are empty.
func WithEmptyRows(t *testing.T) *matrix.CSR {
	t.Helper()
	o := matrix.NewCOO(30, 30, 0)
	for i := 0; i < 30; i += 3 {
		o.Append(int32(i), int32(i), 2)
		o.Append(int32(i), int32((i+7)%30), -1)
	}
	return o.ToCSR()
}

// ---------------------------------------------------------------------------
// References
// ---------------------------------------------------------------------------

// Reference computes the dense-reference product of a CSR matrix: the
// matrix expands to the dense oracle and multiplies by the triple loop,
// so no sparse-kernel code is trusted on either side of a comparison.
// Intended for the small test matrices; it allocates Rows*Cols floats.
func Reference(m *matrix.CSR, x []float64) []float64 {
	y := make([]float64, m.Rows)
	m.ToDense().SpMV(x, y)
	return y
}

// MultiplyManyWant is the specification of the fused k-vector product: k
// independent SpMV calls through the kernel's own serial path, gathered
// from / scattered to the row-major block layout.
func MultiplyManyWant(f SpMVer, rows, cols int, x []float64, k int) []float64 {
	want := make([]float64, rows*k)
	xj := make([]float64, cols)
	yj := make([]float64, rows)
	for t := 0; t < k; t++ {
		for c := 0; c < cols; c++ {
			xj[c] = x[c*k+t]
		}
		f.SpMV(xj, yj)
		for r := 0; r < rows; r++ {
			want[r*k+t] = yj[r]
		}
	}
	return want
}
