// Package topo detects the machine's memory-domain topology and decides how
// many execution-pool shards the SpMV engine should run.
//
// The paper's central claim is that SpMV performance is governed by the
// interaction of matrix features with device topology: memory domains,
// core counts and the bandwidth between them. On Linux the package reads
// the NUMA layout from /sys/devices/system/node; everywhere else (and when
// sysfs is absent, as in many containers) it falls back to a single domain
// spanning the whole machine, so callers never need a platform branch.
//
// The shard count the execution engine uses resolves in three steps, most
// specific first:
//
//  1. a programmatic SetShards override (tests, servers tuning at runtime),
//  2. the SPMV_SHARDS environment variable,
//  3. the detected domain count.
package topo

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Domain is one memory/compute locality domain — a NUMA node on Linux, the
// whole machine under the portable fallback.
type Domain struct {
	// ID is the platform domain identifier (NUMA node number).
	ID int
	// CPUs lists the logical CPUs belonging to the domain; empty when the
	// platform cannot say, in which case sizing falls back to GOMAXPROCS.
	CPUs []int
}

var (
	shardOverride atomic.Int64

	detectOnce sync.Once
	detected   []Domain

	envOnce   sync.Once
	envShards int
)

// Domains returns the machine's locality domains, detected once and cached.
// There is always at least one domain.
func Domains() []Domain {
	detectOnce.Do(func() {
		detected = detect()
		if len(detected) == 0 {
			detected = fallbackDomains()
		}
	})
	return detected
}

// NumDomains returns the number of detected locality domains.
func NumDomains() int { return len(Domains()) }

// Shards returns the execution-pool shard count: the SetShards override if
// one is active, else SPMV_SHARDS, else the detected domain count. The
// result is always at least 1.
func Shards() int {
	if n := shardOverride.Load(); n > 0 {
		return int(n)
	}
	envOnce.Do(func() { envShards = parseShardCount(os.Getenv("SPMV_SHARDS")) })
	if envShards > 0 {
		return envShards
	}
	return NumDomains()
}

// SetShards overrides the shard count; n <= 0 removes the override,
// restoring the SPMV_SHARDS / detected default. It returns the previous
// override (0 if none) so callers can restore it.
func SetShards(n int) int {
	if n < 0 {
		n = 0
	}
	return int(shardOverride.Swap(int64(n)))
}

// parseShardCount parses a shard-count override string; malformed or
// non-positive values mean "no override" (0).
func parseShardCount(s string) int {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 1 {
		return 0
	}
	return n
}

// Assign maps `shards` execution-pool shards onto the detected domains.
// Shards are distributed round-robin; when more shards than domains are
// requested (oversharding, or the single-domain fallback) each domain's
// CPUs are divided among the shards sharing it, so per-shard sizing hints
// stay meaningful.
func Assign(shards int) []Domain {
	if shards < 1 {
		shards = 1
	}
	doms := Domains()
	n := len(doms)
	out := make([]Domain, shards)
	for i := range out {
		out[i] = doms[i%n]
	}
	if shards <= n {
		return out
	}
	for di := 0; di < n; di++ {
		// Shards di, di+n, di+2n, ... share domain di.
		share := (shards - di + n - 1) / n
		cpus := doms[di].CPUs
		if share <= 1 || len(cpus) == 0 {
			continue
		}
		for k := 0; k < share; k++ {
			lo := len(cpus) * k / share
			hi := len(cpus) * (k + 1) / share
			out[di+k*n].CPUs = cpus[lo:hi]
		}
	}
	return out
}

// fallbackDomains is the portable topology: one domain spanning every CPU.
func fallbackDomains() []Domain {
	cpus := make([]int, runtime.NumCPU())
	for i := range cpus {
		cpus[i] = i
	}
	return []Domain{{ID: 0, CPUs: cpus}}
}

// parseCPUList parses a sysfs CPU/node list such as "0-3,8,10-11" into the
// expanded id slice. Malformed fields are skipped; an unparsable string
// yields nil.
func parseCPUList(s string) []int {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []int
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(field, "-"); ok {
			a, errA := strconv.Atoi(lo)
			b, errB := strconv.Atoi(hi)
			if errA != nil || errB != nil || b < a {
				continue
			}
			for id := a; id <= b; id++ {
				out = append(out, id)
			}
			continue
		}
		if id, err := strconv.Atoi(field); err == nil {
			out = append(out, id)
		}
	}
	return out
}
