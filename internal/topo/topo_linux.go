//go:build linux

package topo

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"syscall"
	"unsafe"
)

// nodeRoot is the sysfs NUMA topology directory. A variable so tests can
// point detection at a synthetic tree.
var nodeRoot = "/sys/devices/system/node"

// detect reads the online NUMA nodes and their CPU lists from sysfs. Any
// failure (sysfs unmounted, restricted container) degrades to the portable
// single-domain fallback rather than an error: topology awareness is an
// optimization, never a requirement.
func detect() []Domain {
	online, err := os.ReadFile(nodeRoot + "/online")
	if err != nil {
		return fallbackDomains()
	}
	ids := parseCPUList(string(online))
	if len(ids) == 0 {
		return fallbackDomains()
	}
	doms := make([]Domain, 0, len(ids))
	for _, id := range ids {
		var cpus []int
		if cl, err := os.ReadFile(fmt.Sprintf("%s/node%d/cpulist", nodeRoot, id)); err == nil {
			cpus = parseCPUList(string(cl))
		}
		if len(cpus) == 0 {
			// Memory-only node (CXL/HBM expansion, ACPI quirk): it has no
			// cores to pin a shard's workers to, so treating it as an
			// execution domain would hand an equal matrix slice to workers
			// contending for some other domain's CPUs. Execution topology
			// only counts nodes that can compute.
			continue
		}
		doms = append(doms, Domain{ID: id, CPUs: cpus})
	}
	if len(doms) == 0 {
		return fallbackDomains()
	}
	return doms
}

// maxPinCPUs bounds the affinity mask; CPUs beyond it are ignored.
const maxPinCPUs = 1024

// PinSelf restricts the calling thread to the given CPUs via
// sched_setaffinity, as a best-effort locality hint for pool workers. The
// caller must hold runtime.LockOSThread for the pin to stick to its
// goroutine; an empty CPU list is a no-op. Errors (seccomp-filtered
// syscall, restricted cpuset) are returned for logging but are safe to
// ignore: execution stays correct, only placement is lost.
func PinSelf(cpus []int) error {
	if len(cpus) == 0 {
		return nil
	}
	var mask [maxPinCPUs / 64]uint64
	for _, c := range cpus {
		if c >= 0 && c < maxPinCPUs {
			mask[c/64] |= 1 << (c % 64)
		}
	}
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	runtime.KeepAlive(&mask)
	if errno != 0 {
		return fmt.Errorf("topo: sched_setaffinity(%s): %w",
			strings.Trim(fmt.Sprint(cpus), "[]"), errno)
	}
	return nil
}
