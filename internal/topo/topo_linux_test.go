//go:build linux

package topo

import (
	"os"
	"path/filepath"
	"testing"
)

// writeNodeTree builds a synthetic sysfs node directory.
func writeNodeTree(t *testing.T, online string, cpulists map[int]string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "online"), []byte(online), 0o644); err != nil {
		t.Fatal(err)
	}
	for id, cl := range cpulists {
		dir := filepath.Join(root, "node"+itoa(id))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "cpulist"), []byte(cl), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestDetectReadsSysfs(t *testing.T) {
	prev := nodeRoot
	defer func() { nodeRoot = prev }()

	nodeRoot = writeNodeTree(t, "0-1\n", map[int]string{0: "0-3\n", 1: "4-7\n"})
	doms := detect()
	if len(doms) != 2 {
		t.Fatalf("detect() found %d domains, want 2", len(doms))
	}
	if doms[0].ID != 0 || doms[1].ID != 1 {
		t.Fatalf("domain ids %d,%d, want 0,1", doms[0].ID, doms[1].ID)
	}
	if len(doms[0].CPUs) != 4 || doms[0].CPUs[0] != 0 || doms[0].CPUs[3] != 3 {
		t.Fatalf("node0 CPUs = %v, want 0-3", doms[0].CPUs)
	}
	if len(doms[1].CPUs) != 4 || doms[1].CPUs[0] != 4 {
		t.Fatalf("node1 CPUs = %v, want 4-7", doms[1].CPUs)
	}
}

func TestDetectFallsBackWhenSysfsAbsent(t *testing.T) {
	prev := nodeRoot
	defer func() { nodeRoot = prev }()

	nodeRoot = filepath.Join(t.TempDir(), "does-not-exist")
	doms := detect()
	if len(doms) != 1 || doms[0].ID != 0 {
		t.Fatalf("detect() without sysfs = %v, want single-domain fallback", doms)
	}
}

func TestDetectDropsMemoryOnlyNodes(t *testing.T) {
	prev := nodeRoot
	defer func() { nodeRoot = prev }()

	// node1 has no cpulist (a memory-only CXL/HBM node): it must not become
	// an execution domain.
	nodeRoot = writeNodeTree(t, "0-1", map[int]string{0: "0-1"})
	doms := detect()
	if len(doms) != 1 || doms[0].ID != 0 {
		t.Fatalf("detect() = %v, want only the CPU-bearing node0", doms)
	}

	// All nodes memory-only degrades to the whole-machine fallback.
	nodeRoot = writeNodeTree(t, "0-1", map[int]string{})
	doms = detect()
	if len(doms) != 1 || len(doms[0].CPUs) == 0 {
		t.Fatalf("detect() with no CPU-bearing nodes = %v, want fallback", doms)
	}
}

func TestPinSelfEmptyIsNoOp(t *testing.T) {
	if err := PinSelf(nil); err != nil {
		t.Fatalf("PinSelf(nil) = %v, want nil", err)
	}
}

func TestPinSelfToOwnCPUSucceeds(t *testing.T) {
	// Pinning to every currently-online CPU of domain 0 must succeed (it is
	// a superset or equal of the current affinity mask in any environment
	// that lets us read sysfs).
	doms := Domains()
	if len(doms[0].CPUs) == 0 {
		t.Skip("no CPU list detected")
	}
	if err := PinSelf(doms[0].CPUs); err != nil {
		t.Skipf("sched_setaffinity unavailable here: %v", err)
	}
}
