//go:build !linux

package topo

import "errors"

// detect has no portable topology source off Linux; every platform gets the
// single-domain fallback.
func detect() []Domain { return fallbackDomains() }

// PinSelf is unsupported off Linux; callers treat pinning as a best-effort
// hint, so the error is informational.
func PinSelf(cpus []int) error {
	if len(cpus) == 0 {
		return nil
	}
	return errors.ErrUnsupported
}
