package topo

import (
	"reflect"
	"testing"
)

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"0", []int{0}},
		{"0-3", []int{0, 1, 2, 3}},
		{"0-3,8,10-11", []int{0, 1, 2, 3, 8, 10, 11}},
		{" 0-1 \n", []int{0, 1}},
		{"7,5", []int{7, 5}},
		{"", nil},
		{"garbage", nil},
		{"3-1", nil}, // inverted range skipped
		{"0,x,2", []int{0, 2}},
	}
	for _, c := range cases {
		if got := parseCPUList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseCPUList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseShardCount(t *testing.T) {
	cases := map[string]int{
		"4": 4, "1": 1, " 2 ": 2,
		"0": 0, "-3": 0, "": 0, "two": 0, "1.5": 0,
	}
	for in, want := range cases {
		if got := parseShardCount(in); got != want {
			t.Errorf("parseShardCount(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestShardsOverridePrecedence(t *testing.T) {
	prev := SetShards(3)
	defer SetShards(prev)
	if got := Shards(); got != 3 {
		t.Fatalf("Shards() with override 3 = %d", got)
	}
	SetShards(0) // remove the override: fall back to env/detected
	if got := Shards(); got < 1 {
		t.Fatalf("Shards() without override = %d, want >= 1", got)
	}
	if got := SetShards(5); got != 0 {
		t.Fatalf("SetShards returned previous override %d, want 0", got)
	}
}

func TestDomainsNeverEmpty(t *testing.T) {
	doms := Domains()
	if len(doms) < 1 {
		t.Fatalf("Domains() = %v, want at least one domain", doms)
	}
	if NumDomains() != len(doms) {
		t.Fatalf("NumDomains() = %d, len(Domains()) = %d", NumDomains(), len(doms))
	}
}

func TestAssignRoundRobinAndCPUSplit(t *testing.T) {
	doms := Domains()
	// One shard per domain: identity.
	as := Assign(len(doms))
	for i, d := range as {
		if d.ID != doms[i].ID {
			t.Fatalf("Assign(%d)[%d].ID = %d, want %d", len(doms), i, d.ID, doms[i].ID)
		}
	}
	// Oversharding: every shard still gets a domain, and the shards sharing
	// one domain partition (not duplicate) its CPUs.
	n := 2*len(doms) + 1
	as = Assign(n)
	if len(as) != n {
		t.Fatalf("Assign(%d) returned %d shards", n, len(as))
	}
	seen := map[int]int{} // CPU -> times assigned
	for i, d := range as {
		if d.ID != doms[i%len(doms)].ID {
			t.Errorf("shard %d on domain %d, want round-robin %d", i, d.ID, doms[i%len(doms)].ID)
		}
		for _, c := range d.CPUs {
			seen[c]++
		}
	}
	for c, k := range seen {
		if k > 1 {
			t.Errorf("CPU %d assigned to %d shards, want at most 1", c, k)
		}
	}
	if got := Assign(0); len(got) != 1 {
		t.Errorf("Assign(0) = %d shards, want 1", len(got))
	}
}

func TestFallbackDomainsSpanMachine(t *testing.T) {
	doms := fallbackDomains()
	if len(doms) != 1 || doms[0].ID != 0 {
		t.Fatalf("fallbackDomains() = %v, want one domain with ID 0", doms)
	}
	if len(doms[0].CPUs) < 1 {
		t.Fatalf("fallback domain has no CPUs")
	}
}
