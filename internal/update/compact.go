package update

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/selector"
)

// Compaction retry backoff bounds: the first failed rebuild delays the
// next background attempt by compactRetryBase, doubling per consecutive
// failure up to compactRetryMax. Explicit Compact calls ignore the
// schedule (the caller asked now and gets the error directly).
const (
	compactRetryBase = 100 * time.Millisecond
	compactRetryMax  = 30 * time.Second
)

// Package-wide compaction trigger defaults; per-matrix overrides live in
// Options.
var (
	thresholdMu     sync.Mutex
	defMinCompact   = 8192
	defCompactRatio = 0.05
)

// SetCompactionThreshold sets the process-wide default compaction
// trigger: a background compaction starts once an Updatable's overlay
// (frozen plus active log) holds at least max(min, ratio*base-nnz)
// entries. Non-positive arguments keep the corresponding current value.
// Returns the previous pair.
func SetCompactionThreshold(min int, ratio float64) (int, float64) {
	thresholdMu.Lock()
	defer thresholdMu.Unlock()
	pm, pr := defMinCompact, defCompactRatio
	if min > 0 {
		defMinCompact = min
	}
	if ratio > 0 {
		defCompactRatio = ratio
	}
	return pm, pr
}

// CompactionThreshold returns the current process-wide defaults.
func CompactionThreshold() (int, float64) {
	thresholdMu.Lock()
	defer thresholdMu.Unlock()
	return defMinCompact, defCompactRatio
}

// overlayLen counts overlay entries: frozen plus the active log above the
// snapshot floor.
func (u *Updatable) overlayLen(s *snapshot) int {
	n := int(u.alloc.Load() - s.floor)
	if s.frozen != nil {
		n += s.frozen.NNZ()
	}
	return n
}

// threshold resolves the effective trigger for this matrix.
func (u *Updatable) threshold(baseNNZ int64) int {
	min, ratio := u.opts.MinCompact, u.opts.CompactRatio
	if min <= 0 || ratio <= 0 {
		dm, dr := CompactionThreshold()
		if min <= 0 {
			min = dm
		}
		if ratio <= 0 {
			ratio = dr
		}
	}
	t := int(ratio * float64(baseNNZ))
	if t < min {
		t = min
	}
	return t
}

// maybeCompact kicks off one background compaction when the overlay has
// crossed the trigger, none is already pending, and the retry backoff
// from a previous failure has elapsed.
func (u *Updatable) maybeCompact() {
	s := u.snap.Load()
	if u.overlayLen(s) < u.threshold(s.base.NNZ()) {
		return
	}
	if ns := u.nextCompactNs.Load(); ns != 0 && time.Now().UnixNano() < ns {
		return // backing off after a failed rebuild; frozen overlay serves reads
	}
	if !u.compactPending.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer u.compactPending.Store(false)
		u.compactMu.Lock()
		defer u.compactMu.Unlock()
		s := u.snap.Load()
		if u.overlayLen(s) < u.threshold(s.base.NNZ()) {
			return // a concurrent explicit Compact already folded it
		}
		// A failed rebuild keeps the frozen epoch — readers stay exact —
		// and arms the backoff for the next attempt.
		u.noteCompactOutcome(u.compactOnce(context.Background()))
	}()
}

// noteCompactOutcome updates the retry-backoff state after a compaction
// attempt: failures double the delay before the next background attempt
// (capped), success clears it.
func (u *Updatable) noteCompactOutcome(err error) {
	if err == nil {
		u.compactFails.Store(0)
		u.nextCompactNs.Store(0)
		return
	}
	streak := u.compactFails.Add(1)
	d := compactRetryBase << (streak - 1)
	if streak > 8 || d > compactRetryMax || d <= 0 {
		d = compactRetryMax
	}
	u.nextCompactNs.Store(time.Now().UnixNano() + d.Nanoseconds())
}

// Compact synchronously folds the entire overlay — frozen and active —
// into a fresh base matrix, re-selects the base format, and publishes the
// new epoch. Multiplies in flight finish on the old snapshot; new ones
// see the compacted base immediately.
func (u *Updatable) Compact() error {
	return u.CompactCtx(context.Background())
}

// CompactCtx is Compact honoring a context: the format re-selection of
// the rebuild phase aborts at its stage boundaries on cancellation (see
// selector.ReselectCtx). A cancelled compaction behaves exactly like a
// failed one — the freeze has already happened, the frozen overlay stays
// live serving exact reads, and a later Compact folds it.
func (u *Updatable) CompactCtx(ctx context.Context) error {
	u.compactMu.Lock()
	defer u.compactMu.Unlock()
	err := u.compactOnce(ctx)
	u.noteCompactOutcome(err)
	return err
}

// compactOnce runs one freeze-then-rebuild cycle. Caller holds compactMu.
//
// Phase 1 (freeze) takes every shard lock — pausing writers for the gather,
// never readers — moves the whole active log into the frozen overlay, and
// bumps the floor to the allocation cut. Holding all shard locks makes the
// cut exact: no writer can be between ticket allocation and view publish,
// so every sequence number at or below the cut is in some view.
//
// Phase 2 (rebuild) runs without any lock: merge the frozen overlay into a
// fresh CSR, re-select the base format (drift invalidation plus warm
// journal reuse via selector.Reselect), and publish the new epoch. Readers
// that loaded the frozen snapshot concurrently revalidate and retry.
func (u *Updatable) compactOnce(ctx context.Context) error {
	start := time.Now()
	// Freeze injection point: a fault here models a compactor dying before
	// it touched anything — no freeze happens, the current epoch (and any
	// earlier frozen overlay) keeps serving.
	if err := failpoint.Inject("update.freeze"); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := range u.shards {
		u.shards[i].mu.Lock()
	}
	s := u.snap.Load()
	cut := u.alloc.Load()
	frozenN := 0
	if s.frozen != nil {
		frozenN = s.frozen.NNZ()
	}
	active := 0
	for i := range u.shards {
		active += len(u.shards[i].view.Load().seq)
	}
	if frozenN+active == 0 {
		for i := range u.shards {
			u.shards[i].mu.Unlock()
		}
		return nil
	}
	o := matrix.NewCOO(s.baseCSR.Rows, s.baseCSR.Cols, frozenN+active)
	if s.frozen != nil {
		// The frozen overlay is already sorted and duplicate-free, so it
		// forms the sorted prefix Compact's fast path scans over.
		o.RowIdx = append(o.RowIdx, s.frozen.RowIdx...)
		o.ColIdx = append(o.ColIdx, s.frozen.ColIdx...)
		o.Val = append(o.Val, s.frozen.Val...)
	}
	for i := range u.shards {
		vw := u.shards[i].view.Load()
		o.RowIdx = append(o.RowIdx, vw.row...)
		o.ColIdx = append(o.ColIdx, vw.col...)
		o.Val = append(o.Val, vw.val...)
	}
	o.Compact()
	// Drop net-zero cells: deletions and exact cancellations carry no
	// information once folded, and keeping them would grow the overlay (and
	// later the merged base) with dead storage.
	w := 0
	for i := range o.Val {
		if o.Val[i] != 0 {
			o.RowIdx[w], o.ColIdx[w], o.Val[w] = o.RowIdx[i], o.ColIdx[i], o.Val[i]
			w++
		}
	}
	o.RowIdx, o.ColIdx, o.Val = o.RowIdx[:w], o.ColIdx[:w], o.Val[:w]

	frozen := &snapshot{
		epoch:   s.epoch + 1,
		base:    s.base,
		baseCSR: s.baseCSR,
		floor:   cut,
	}
	if o.NNZ() > 0 {
		frozen.frozen = o
		frozen.fdelta = formats.NewDeltaCOO(o)
	}
	u.snap.Store(frozen)
	for i := range u.shards {
		sh := &u.shards[i]
		sh.view.Store(emptyView)
		sh.net = make(map[cell]float64)
		sh.mu.Unlock()
	}
	u.lastFreezeNs.Store(time.Since(start).Nanoseconds())

	if u.rebuildHook != nil {
		u.rebuildHook()
	}
	if frozen.frozen == nil {
		// The overlay net-cancelled to nothing; the old base is still exact.
		u.lastCompactNs.Store(time.Since(start).Nanoseconds())
		return nil
	}
	merged := frozen.baseCSR.MergeCOO(frozen.frozen)
	base, err := u.rebuildBase(ctx, merged, frozen.baseCSR.Fingerprint())
	if err != nil {
		return err
	}
	u.snap.Store(&snapshot{
		epoch:   frozen.epoch + 1,
		base:    base,
		baseCSR: merged,
		floor:   frozen.floor,
	})
	u.compactions.Add(1)
	u.lastCompactNs.Store(time.Since(start).Nanoseconds())
	return nil
}

// rebuildBase builds the next epoch's base format for the merged matrix.
// A pinned format rebuilds as pinned (falling back to Naive-CSR when the
// drifted structure no longer fits its build constraints); otherwise the
// selector re-runs, invalidating the predecessor fingerprint's cached
// decisions and reusing the journal for warm, zero-probe re-decisions.
func (u *Updatable) rebuildBase(ctx context.Context, m *matrix.CSR, oldFP uint64) (formats.Format, error) {
	// Rebuild injection point: a fault here models the rebuild dying after
	// the freeze — the frozen snapshot is already published, so readers
	// keep computing base + frozen exactly; a retry re-merges the same
	// frozen overlay.
	if err := failpoint.Inject("update.rebuild"); err != nil {
		return nil, err
	}
	if u.opts.Format != "" {
		b, ok := formats.Lookup(u.opts.Format)
		if !ok {
			return nil, fmt.Errorf("update: unknown format %q", u.opts.Format)
		}
		f, err := b.Build(m)
		if err == nil {
			return f, nil
		}
		cb, ok := formats.Lookup("Naive-CSR")
		if !ok {
			return nil, err
		}
		return cb.Build(m)
	}
	a, _, err := selector.ReselectCtx(ctx, oldFP, m, selector.AutoOptions{
		K: u.opts.K, Probe: u.opts.Probe, Cache: u.opts.Cache, Learned: u.opts.Learned,
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Stats is a point-in-time view of an Updatable's internals.
type Stats struct {
	Epoch         uint64 // snapshot publishes since construction
	BaseFormat    string // current base format name
	BaseNNZ       int64  // stored entries in the base
	FrozenLen     int    // entries in the frozen overlay
	ActiveLen     int    // committed entries in the active log
	Updates       uint64 // updates applied since construction
	Compactions   uint64 // completed freeze+rebuild cycles
	LastFreezeNs  int64  // duration writers were paused by the last freeze
	LastCompactNs int64  // full duration of the last compaction
	CommitParks   uint64 // commits that parked waiting for a predecessor
	CompactFails  uint32 // consecutive failed rebuilds (0 when healthy)
	RetryBackoff  bool   // a failed rebuild is currently delaying auto-compaction
}

// Stats returns current counters and sizes.
func (u *Updatable) Stats() Stats {
	views := make([]*shardView, len(u.shards))
	s, v := u.loadConsistent(views)
	st := Stats{
		Epoch:         s.epoch,
		BaseFormat:    s.base.Name(),
		BaseNNZ:       s.base.NNZ(),
		Updates:       v,
		Compactions:   u.compactions.Load(),
		LastFreezeNs:  u.lastFreezeNs.Load(),
		LastCompactNs: u.lastCompactNs.Load(),
		CommitParks:   u.commitParks.Load(),
		CompactFails:  u.compactFails.Load(),
		RetryBackoff:  u.nextCompactNs.Load() > time.Now().UnixNano(),
	}
	if s.frozen != nil {
		st.FrozenLen = s.frozen.NNZ()
	}
	for _, vw := range views {
		lo, hi := viewRange(vw, s.floor, v)
		st.ActiveLen += hi - lo
	}
	return st
}

// Epoch returns the current snapshot epoch.
func (u *Updatable) Epoch() uint64 { return u.snap.Load().epoch }

// Base returns the current base format.
func (u *Updatable) Base() formats.Format { return u.snap.Load().base }

// BaseMatrix returns the CSR the current base was built from.
func (u *Updatable) BaseMatrix() *matrix.CSR { return u.snap.Load().baseCSR }
