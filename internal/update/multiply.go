package update

import (
	"sort"

	"repro/internal/exec"
	"repro/internal/formats"
)

// loadConsistent fills views with the shard views of one coherent read
// point and returns the snapshot and the visible watermark that go with
// them. The seqlock-style revalidation guards the one hazard: a compactor
// publishing a new snapshot between our snapshot load and our view loads
// would pair views trimmed for the new floor with the old floor. Readers
// never take a lock; the retry only fires across a concurrent snapshot
// publish, which is rare and cheap to replay.
func (u *Updatable) loadConsistent(views []*shardView) (*snapshot, uint64) {
	for {
		s := u.snap.Load()
		v := u.visible.Load()
		for i := range u.shards {
			views[i] = u.shards[i].view.Load()
		}
		if u.snap.Load() == s {
			return s, v
		}
	}
}

// viewRange returns the half-open index range of entries with
// floor < seq <= v in the ascending sequence array.
func viewRange(vw *shardView, floor, v uint64) (int, int) {
	lo := sort.Search(len(vw.seq), func(i int) bool { return vw.seq[i] > floor })
	hi := sort.Search(len(vw.seq), func(i int) bool { return vw.seq[i] > v })
	return lo, hi
}

// Name reports the current base wrapped in Updatable[...].
func (u *Updatable) Name() string { return "Updatable[" + u.snap.Load().base.Name() + "]" }

// Rows returns the number of rows.
func (u *Updatable) Rows() int { return u.snap.Load().baseCSR.Rows }

// Cols returns the number of columns.
func (u *Updatable) Cols() int { return u.snap.Load().baseCSR.Cols }

// NNZ returns the stored-entry count of the current epoch: base plus
// overlay. Overlay cells that shadow base cells count twice until the
// next compaction folds them, so this is an upper bound on the logical
// nonzero count.
func (u *Updatable) NNZ() int64 {
	views := make([]*shardView, len(u.shards))
	s, v := u.loadConsistent(views)
	n := s.base.NNZ()
	if s.frozen != nil {
		n += int64(s.frozen.NNZ())
	}
	for _, vw := range views {
		lo, hi := viewRange(vw, s.floor, v)
		n += int64(hi - lo)
	}
	return n
}

// Bytes estimates resident bytes: base plus overlay arrays.
func (u *Updatable) Bytes() int64 {
	views := make([]*shardView, len(u.shards))
	s, _ := u.loadConsistent(views)
	b := s.base.Bytes()
	if s.fdelta != nil {
		b += s.fdelta.Bytes()
	}
	for _, vw := range views {
		b += int64(len(vw.seq))*8 + int64(len(vw.row))*4 + int64(len(vw.col))*4 + int64(len(vw.val))*8
	}
	return b
}

// Traits reports the current base's traits: the overlay is an additive
// veneer, not a different execution shape.
func (u *Updatable) Traits() formats.Traits { return u.snap.Load().base.Traits() }

// SpMV computes y = A*x serially over the fused base + frozen + active
// pass of one consistent read point.
func (u *Updatable) SpMV(x, y []float64) {
	views := make([]*shardView, len(u.shards))
	s, v := u.loadConsistent(views)
	s.base.SpMV(x, y)
	if s.fdelta != nil {
		s.fdelta.AddSpMV(x, y, 1)
	}
	u.addActive(views, s.floor, v, x, y, 1)
}

// SpMVParallel computes y = A*x with up to workers goroutines. The base
// and frozen overlay use their own parallel kernels; active log entries
// scatter by shard, and shards own disjoint row groups, so the parallel
// apply never writes one output row from two goroutines.
func (u *Updatable) SpMVParallel(x, y []float64, workers int) {
	views := make([]*shardView, len(u.shards))
	s, v := u.loadConsistent(views)
	s.base.SpMVParallel(x, y, workers)
	if s.fdelta != nil {
		s.fdelta.AddSpMV(x, y, workers)
	}
	u.addActive(views, s.floor, v, x, y, workers)
}

// MultiplyMany computes Y = A*X for k interleaved right-hand sides in the
// same fused fashion.
func (u *Updatable) MultiplyMany(y, x []float64, k int) {
	views := make([]*shardView, len(u.shards))
	s, v := u.loadConsistent(views)
	s.base.MultiplyMany(y, x, k)
	if s.fdelta != nil {
		s.fdelta.AddMultiplyMany(y, x, k, exec.MaxWorkers())
	}
	u.addActiveMulti(views, s.floor, v, x, y, k)
}

// addActive accumulates y += active*x for the committed active entries of
// one read point. Entries below the snapshot floor are folded into the
// frozen overlay already; entries above the visible watermark are not yet
// part of the observed prefix.
func (u *Updatable) addActive(views []*shardView, floor, v uint64, x, y []float64, workers int) {
	var total int64
	for _, vw := range views {
		lo, hi := viewRange(vw, floor, v)
		total += int64(hi - lo)
	}
	if total == 0 {
		return
	}
	workers = exec.Workers(total, workers)
	if workers > len(views) {
		workers = len(views)
	}
	if workers <= 1 {
		for _, vw := range views {
			lo, hi := viewRange(vw, floor, v)
			for e := lo; e < hi; e++ {
				y[vw.row[e]] += vw.val[e] * x[vw.col[e]]
			}
		}
		return
	}
	g := exec.Acquire(workers)
	defer g.Release()
	g.Run(workers, func(w int) {
		for i := w; i < len(views); i += workers {
			vw := views[i]
			lo, hi := viewRange(vw, floor, v)
			for e := lo; e < hi; e++ {
				y[vw.row[e]] += vw.val[e] * x[vw.col[e]]
			}
		}
	})
}

// addActiveMulti is addActive for k interleaved right-hand sides.
func (u *Updatable) addActiveMulti(views []*shardView, floor, v uint64, x, y []float64, k int) {
	var total int64
	for _, vw := range views {
		lo, hi := viewRange(vw, floor, v)
		total += int64(hi - lo)
	}
	if total == 0 {
		return
	}
	workers := exec.Workers(total*int64(k), exec.MaxWorkers())
	if workers > len(views) {
		workers = len(views)
	}
	apply := func(vw *shardView) {
		lo, hi := viewRange(vw, floor, v)
		for e := lo; e < hi; e++ {
			yb := y[int(vw.row[e])*k : int(vw.row[e])*k+k]
			xb := x[int(vw.col[e])*k : int(vw.col[e])*k+k]
			val := vw.val[e]
			for t := range yb {
				yb[t] += val * xb[t]
			}
		}
	}
	if workers <= 1 {
		for _, vw := range views {
			apply(vw)
		}
		return
	}
	g := exec.Acquire(workers)
	defer g.Release()
	g.Run(workers, func(w int) {
		for i := w; i < len(views); i += workers {
			apply(views[i])
		}
	})
}
