package update

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/selector"
)

// applyFixedDrift drives a deterministic update sequence: same seed, same
// cells, so two Updatables over the same base compact to structurally
// identical matrices (equal fingerprints).
func applyFixedDrift(u *Updatable, rows, cols int) {
	rng := rand.New(rand.NewSource(424242))
	for i := 0; i < 5000; i++ {
		u.Set(rng.Intn(rows), rng.Intn(cols), float64(rng.Intn(15)+1))
	}
}

// TestCompactReAutoZeroProbesWarm is the acceptance test for the
// re-selection hook: a compaction in a "warm" process — same journal
// directory, fresh in-memory caches, like any restart — must re-run Auto
// on the merged matrix with zero micro-probes and reproduce the cold
// process's decision.
func TestCompactReAutoZeroProbesWarm(t *testing.T) {
	dir := t.TempDir()
	m, err := gen.Generate(gen.Params{
		Rows: 20000, Cols: 20000,
		AvgNNZPerRow: 12, StdNNZPerRow: 4,
		SkewCoeff: 10, BWScaled: 0.3, CrossRowSim: 0.5, AvgNumNeigh: 0.9,
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Cold process: build, drift, compact; both decisions journaled.
	st1, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	dc1 := cache.NewDecisionCache()
	dc1.AttachStore(st1)
	u1, err := New(m, Options{Probe: true, Cache: dc1, NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	applyFixedDrift(u1, m.Rows, m.Cols)
	if err := u1.Compact(); err != nil {
		t.Fatal(err)
	}
	a1, ok := u1.Base().(*formats.Auto)
	if !ok {
		t.Fatalf("compacted base is %T, want *formats.Auto", u1.Base())
	}
	if a1.Choice().Cached {
		t.Fatal("cold re-selection must not be a cache hit")
	}
	coldFP := u1.BaseMatrix().Fingerprint()
	if coldFP == m.Fingerprint() {
		t.Fatal("drift did not change the fingerprint; test is vacuous")
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm process: fresh in-memory state over the same journal.
	st2, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	dc2 := cache.NewDecisionCache()
	if n := dc2.AttachStore(st2); n < 2 {
		t.Fatalf("warm-loaded %d decisions, want >= 2 (initial build + re-selection)", n)
	}
	u2, err := New(m, Options{Probe: true, Cache: dc2, NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	applyFixedDrift(u2, m.Rows, m.Cols)
	probesBefore := selector.ProbeCount()
	if err := u2.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := selector.ProbeCount() - probesBefore; got != 0 {
		t.Errorf("warm compaction ran %d micro-probes, want 0", got)
	}
	a2 := u2.Base().(*formats.Auto)
	if !a2.Choice().Cached {
		t.Error("warm re-selection missed the persistent cache")
	}
	if a2.Chosen() != a1.Chosen() {
		t.Errorf("warm re-selection chose %q, cold chose %q", a2.Chosen(), a1.Chosen())
	}
	if u2.BaseMatrix().Fingerprint() != coldFP {
		t.Error("deterministic drift produced different merged fingerprints")
	}
}
