package update

// Robustness tests for the update layer: the parked commit wait under
// many-writer contention, and compaction fault handling — a rebuild that
// dies after the freeze must leave the frozen overlay live (readers stay
// exact), arm a retry backoff, and fold cleanly once the fault clears.
// Run with -race.

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/matrix"
)

// TestManyWriterCommitContention drives far more concurrent writers than
// cores through the ticket-ordered commit path, forcing the spin-then-park
// wait to actually park, and validates that every update still commits in
// a consistent total order: each writer owns one diagonal cell and adds 1
// per iteration, so the final matrix is exact iff no commit was lost,
// duplicated, or torn.
func TestManyWriterCommitContention(t *testing.T) {
	const writers = 64
	iters := 400
	if testing.Short() {
		iters = 80
	}
	m := matrix.Identity(writers)
	u, err := New(m, Options{Format: "Naive-CSR", Shards: 8, NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				u.Add(w, w, 1)
			}
		}(w)
	}
	wg.Wait()

	if got, want := u.visible.Load(), u.alloc.Load(); got != want {
		t.Fatalf("visible watermark %d != allocated %d after quiesce", got, want)
	}
	for w := 0; w < writers; w++ {
		want := 1 + float64(iters) // identity diagonal + iters additions
		if got := u.At(w, w); got != want {
			t.Errorf("cell (%d,%d) = %v, want %v", w, w, got, want)
		}
	}
	// With 64 writers racing a ticket chain, some commits must have waited
	// past the spin budget; the counter proves the parked path executed
	// (not just compiled). This is load-dependent in principle but
	// deterministic in practice at 64x contention on any CI host.
	if u.Stats().CommitParks == 0 {
		t.Log("warning: no commit ever parked; contention too low to exercise the parked path")
	}

	// The matrix still multiplies exactly after the storm.
	x := make([]float64, writers)
	y := make([]float64, writers)
	for i := range x {
		x[i] = 1
	}
	u.SpMVParallel(x, y, 4)
	for w := 0; w < writers; w++ {
		if want := 1 + float64(iters); y[w] != want {
			t.Fatalf("y[%d] = %v, want %v", w, y[w], want)
		}
	}
}

// TestCommitParkAndWake pins the parked wait deterministically: a commit
// whose predecessor has not published must exhaust its spin budget, park
// on the condition variable, and wake exactly when the predecessor's
// publish broadcasts — no lost wakeup, no busy loop.
func TestCommitParkAndWake(t *testing.T) {
	m := matrix.Identity(4)
	u, err := New(m, Options{Format: "Naive-CSR", NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	u.alloc.Store(2) // tickets 1 and 2 are allocated, neither published

	done := make(chan struct{})
	go func() {
		u.commit(2) // predecessor 1 unpublished: must park
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for u.commitParks.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("commit(2) never parked")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("commit(2) returned before its predecessor published")
	default:
	}

	u.commit(1) // publish the predecessor; must wake the parked commit
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("parked commit(2) never woke after predecessor published (lost wakeup)")
	}
	if got := u.visible.Load(); got != 2 {
		t.Fatalf("visible = %d after both commits, want 2", got)
	}
}

// TestRebuildFailureKeepsFrozenOverlayLive: a rebuild fault after the
// freeze must not cost readers anything — the frozen snapshot serves
// exact values, writers keep writing, and a retry after the fault clears
// folds everything.
func TestRebuildFailureKeepsFrozenOverlayLive(t *testing.T) {
	m := matrix.Identity(32)
	u, err := New(m, Options{Format: "Naive-CSR", Shards: 4, NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	u.Set(3, 4, 2.5)
	u.Add(5, 5, 1)

	failpoint.SetEnabled(true)
	defer failpoint.SetEnabled(false)
	if err := failpoint.Enable("update.rebuild", "error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("update.rebuild")

	err = u.Compact()
	if err == nil {
		t.Fatal("Compact with injected rebuild fault returned nil")
	}
	var inj *failpoint.Injected
	if !errors.As(err, &inj) || inj.Site != "update.rebuild" {
		t.Fatalf("Compact error = %v, want injected update.rebuild fault", err)
	}

	// The freeze happened (overlay moved to frozen), the rebuild did not
	// (epoch's base is the original); reads are still exact.
	st := u.Stats()
	if st.FrozenLen == 0 {
		t.Error("frozen overlay empty after failed rebuild; updates lost?")
	}
	if st.Compactions != 0 {
		t.Errorf("Compactions = %d after failed rebuild, want 0", st.Compactions)
	}
	if st.CompactFails == 0 {
		t.Error("CompactFails not recorded after failed rebuild")
	}
	if got := u.At(3, 4); got != 2.5 {
		t.Errorf("At(3,4) = %v after failed rebuild, want 2.5", got)
	}
	if got := u.At(5, 5); got != 2 {
		t.Errorf("At(5,5) = %v after failed rebuild, want 2", got)
	}
	// Writers are not poisoned: more updates land on the frozen epoch.
	u.Set(7, 8, -1)
	if got := u.At(7, 8); got != -1 {
		t.Errorf("At(7,8) = %v after post-fault write, want -1", got)
	}

	// Fault clears; the retry folds frozen + new active into a fresh base.
	failpoint.Disable("update.rebuild")
	if err := u.Compact(); err != nil {
		t.Fatalf("Compact after fault cleared: %v", err)
	}
	st = u.Stats()
	if st.FrozenLen != 0 || st.ActiveLen != 0 {
		t.Errorf("overlay not folded after retry: frozen=%d active=%d", st.FrozenLen, st.ActiveLen)
	}
	if st.CompactFails != 0 {
		t.Errorf("CompactFails = %d after successful retry, want 0", st.CompactFails)
	}
	for _, c := range []struct {
		r, c int
		want float64
	}{{3, 4, 2.5}, {5, 5, 2}, {7, 8, -1}, {0, 0, 1}} {
		if got := u.At(c.r, c.c); got != c.want {
			t.Errorf("At(%d,%d) = %v after retry, want %v", c.r, c.c, got, c.want)
		}
	}
}

// TestFreezeFailpointLeavesEpochUntouched: a fault before the freeze is a
// pure no-op — no epoch bump, no overlay movement.
func TestFreezeFailpointLeavesEpochUntouched(t *testing.T) {
	m := matrix.Identity(8)
	u, err := New(m, Options{Format: "Naive-CSR", NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	u.Set(1, 2, 3)
	epoch := u.Epoch()

	failpoint.SetEnabled(true)
	defer failpoint.SetEnabled(false)
	if err := failpoint.Enable("update.freeze", "error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("update.freeze")

	if err := u.Compact(); err == nil ||
		!strings.Contains(err.Error(), "update.freeze") {
		t.Fatalf("Compact = %v, want injected update.freeze fault", err)
	}
	if u.Epoch() != epoch {
		t.Errorf("epoch moved %d -> %d on pre-freeze fault", epoch, u.Epoch())
	}
	if got := u.At(1, 2); got != 3 {
		t.Errorf("At(1,2) = %v, want 3", got)
	}
}

// TestCompactRetryBackoffThrottlesAutoCompaction: after a background
// rebuild failure the auto-compaction trigger goes quiet until the
// backoff elapses, instead of hot-looping a failing rebuild, and the
// frozen overlay keeps serving reads throughout.
func TestCompactRetryBackoffThrottlesAutoCompaction(t *testing.T) {
	m := matrix.Identity(16)
	// Tiny threshold: every update crosses it, so each would try to
	// auto-compact if not throttled.
	u, err := New(m, Options{Format: "Naive-CSR", Shards: 2, MinCompact: 1, CompactRatio: 1e-9})
	if err != nil {
		t.Fatal(err)
	}

	failpoint.SetEnabled(true)
	defer failpoint.SetEnabled(false)
	if err := failpoint.Enable("update.rebuild", "error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("update.rebuild")

	// First failure comes from an explicit compact so the test controls
	// timing; it arms the backoff.
	u.Set(0, 1, 1)
	if err := u.Compact(); err == nil {
		t.Fatal("Compact with injected fault returned nil")
	}
	if !u.Stats().RetryBackoff {
		t.Fatal("backoff not armed after failed compact")
	}
	failsAfterFirst := u.Stats().CompactFails

	// Updates during the backoff window must not launch rebuild attempts:
	// the failure streak cannot grow while the trigger is throttled.
	for i := 0; i < 50; i++ {
		u.Add(i%16, (i+1)%16, 1)
	}
	// Any stray background attempt would have to finish before the check;
	// compactMu is the serialization point.
	u.compactMu.Lock()
	fails := u.compactFails.Load()
	u.compactMu.Unlock()
	if fails > failsAfterFirst+1 {
		// One in-flight attempt may have raced the arming of the backoff;
		// more means the throttle is not holding.
		t.Errorf("failure streak grew %d -> %d during backoff window", failsAfterFirst, fails)
	}

	// Reads stayed exact the whole time: Set(0,1,1) plus the loop's adds
	// at i = 0, 16, 32, 48.
	if got := u.At(0, 1); got != 5 {
		t.Errorf("At(0,1) = %v, want 5", got)
	}

	// Fault clears, backoff expires (force it), next write compacts.
	failpoint.Disable("update.rebuild")
	u.nextCompactNs.Store(time.Now().UnixNano() - 1)
	if err := u.Compact(); err != nil {
		t.Fatalf("Compact after clearing fault: %v", err)
	}
	st := u.Stats()
	if st.CompactFails != 0 || st.RetryBackoff {
		t.Errorf("backoff state not cleared after success: %+v", st)
	}
	if st.FrozenLen != 0 || st.ActiveLen != 0 {
		t.Errorf("overlay not folded: frozen=%d active=%d", st.FrozenLen, st.ActiveLen)
	}
}
