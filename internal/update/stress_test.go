package update

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/matrix"
)

// TestLinearizablePrefixUnderLoad is the snapshot-consistency stress: one
// sequencing writer steps the diagonal cells of rows 0..7 through encoded
// step values while concurrent readers multiply and chaos writers mutate
// disjoint rows. Every observed y must decode to a consistent prefix of
// the sequencer's program order: if the largest step visible anywhere is
// L, then each row r must show exactly the last step <= L that targeted
// it. Background compactions run throughout (tiny threshold), so the
// prefix property is checked across epoch swaps too. Run with -race.
func TestLinearizablePrefixUnderLoad(t *testing.T) {
	const rows = 64
	steps := 4000
	if testing.Short() {
		steps = 800
	}
	m := matrix.Identity(rows)
	u, err := New(m, Options{
		Format: "Naive-CSR", Shards: 8,
		MinCompact: 64, CompactRatio: 1e-9, // compact aggressively under load
	})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Sequencer: step s sets the diagonal of row s%8 to enc(s) = 100+s.
	// Each row's cell moves through strictly increasing encodings, so a
	// multiply with x = ones recovers the last step per row exactly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 1; s <= steps; s++ {
			u.Set(s%8, s%8, 100+float64(s))
		}
		stop.Store(true)
	}()

	// Chaos writers: each owns a disjoint band of rows >= 32, hammering
	// Set/Add/Delete to stress the log, the net index, and compaction.
	// Their final per-cell values are validated after the quiesce.
	const nChaos = 3
	mirrors := make([]map[[2]int]float64, nChaos)
	for w := 0; w < nChaos; w++ {
		mirrors[w] = make(map[[2]int]float64)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + w)))
			lo := 32 + w*10
			mine := mirrors[w]
			for !stop.Load() {
				r := lo + rng.Intn(10)
				c := rng.Intn(rows)
				v := float64(rng.Intn(32)-16) / 4
				switch rng.Intn(4) {
				case 0, 1:
					u.Set(r, c, v)
					if v == 0 {
						delete(mine, [2]int{r, c})
					} else {
						mine[[2]int{r, c}] = v
					}
				case 2:
					u.Add(r, c, v)
					if nv := mine[[2]int{r, c}] + v; nv == 0 {
						delete(mine, [2]int{r, c})
					} else {
						mine[[2]int{r, c}] = nv
					}
				default:
					u.Delete(r, c)
					delete(mine, [2]int{r, c})
				}
			}
		}(w)
	}

	// Readers: decode the sequencer rows from every multiply and assert
	// the prefix property; prefixes must also be monotone per reader.
	x := make([]float64, rows)
	for i := range x {
		x[i] = 1
	}
	const nReaders = 4
	errs := make(chan string, nReaders)
	for g := 0; g < nReaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			y := make([]float64, rows)
			prevL := 0
			for !stop.Load() {
				if g%2 == 0 {
					u.SpMV(x, y)
				} else {
					u.SpMVParallel(x, y, 4)
				}
				// Decode: row r in 0..7 reads 1 (untouched identity) or
				// 100+s for the last applied step s targeting it.
				var obs [8]int
				L := 0
				for r := 0; r < 8; r++ {
					switch {
					case y[r] == 1:
						obs[r] = 0
					case y[r] >= 101:
						obs[r] = int(y[r] - 100)
						if obs[r] > L {
							L = obs[r]
						}
					default:
						errs <- "row read an impossible value"
						return
					}
				}
				if L < prevL {
					errs <- "observed prefix went backwards"
					return
				}
				prevL = L
				for r := 0; r < 8; r++ {
					// Last step <= L targeting row r: steps hit row s%8, so
					// it is the largest s <= L with s%8 == r.
					q := L - (L-r+8)%8
					if q < 1 {
						q = 0
					}
					if obs[r] != q {
						errs <- "row inconsistent with observed prefix"
						return
					}
				}
			}
		}(g)
	}

	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Quiesce: fold everything and validate the final state cell by cell.
	if err := u.Compact(); err != nil {
		t.Fatal(err)
	}
	for s := steps - 7; s <= steps; s++ {
		if got := u.At(s%8, s%8); got != 100+float64(s) {
			t.Errorf("final diagonal of row %d = %g, want %g", s%8, got, 100+float64(s))
		}
	}
	for w, mine := range mirrors {
		for rc, v := range mine {
			if got := u.At(rc[0], rc[1]); got != v {
				t.Errorf("chaos writer %d cell (%d,%d) = %g, want %g", w, rc[0], rc[1], got, v)
			}
		}
	}
	if st := u.Stats(); st.Compactions == 0 {
		t.Error("stress ran without a single background compaction; threshold tuning is off")
	}
}

// TestCompactionDoesNotBlockReaders pins the zero-reader-blocking
// contract: while the compactor is stalled inside its rebuild phase (via
// the test hook), readers and writers must keep completing multiplies and
// updates on the frozen snapshot.
func TestCompactionDoesNotBlockReaders(t *testing.T) {
	const rows = 128
	m := matrix.Identity(rows)
	u, err := New(m, Options{Format: "Naive-CSR", NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		u.Set(i, (i+1)%rows, 3)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	u.rebuildHook = func() {
		close(entered)
		<-release
	}
	done := make(chan error, 1)
	go func() { done <- u.Compact() }()
	<-entered

	// The freeze has published; the compactor is parked mid-rebuild
	// holding no locks. Readers and writers must make full progress.
	x := make([]float64, rows)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, rows)
	for i := 0; i < 200; i++ {
		u.SpMV(x, y)
		if y[0] != 1+3 {
			t.Fatalf("iteration %d: y[0] = %g, want 4", i, y[0])
		}
	}
	for i := 0; i < 50; i++ {
		u.Set(i, (i+2)%rows, 5)
	}
	u.SpMV(x, y)
	if y[0] != 1+3+5 {
		t.Fatalf("post-write y[0] = %g, want 9", y[0])
	}
	epochDuring := u.Epoch()

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	u.rebuildHook = nil
	if u.Epoch() <= epochDuring {
		t.Errorf("epoch did not advance past the rebuild: %d -> %d", epochDuring, u.Epoch())
	}
	st := u.Stats()
	if st.Compactions != 1 || st.FrozenLen != 0 {
		t.Errorf("Stats after compaction = %+v", st)
	}
	// The 50 writes landed during the stall stay in the active log and
	// still read correctly on the new epoch.
	u.SpMV(x, y)
	if y[0] != 1+3+5 {
		t.Errorf("post-compaction y[0] = %g, want 9", y[0])
	}
}
