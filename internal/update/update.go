// Package update provides Updatable, a mutable sparse matrix for
// dynamic-graph workloads: a read-optimized base (any built
// formats.Format) paired with a concurrent delta overlay, multiplied
// together in one fused pass.
//
// The design is epoch/RCU-style. Readers load one immutable snapshot
// pointer — {base format, base CSR, frozen overlay, log floor} — plus the
// published shard views of the active delta log, and compute base + frozen
// + active without taking any lock. Writers append to a row-sharded log
// under a short per-shard lock and commit in global sequence order, so
// every multiply observes a prefix of the total update order (the
// linearizable-snapshot contract the stress tests pin). When the overlay
// crosses a size threshold, a background compactor folds it into a fresh
// CSR, re-runs automatic format selection (structure drift can change the
// winner; the decision journal makes warm re-decisions zero-probe), and
// swaps the snapshot — in-flight multiplies finish on the old epoch.
package update

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/selector"
)

// DefaultShards is the default delta-log shard count. Rows map to shards
// by r mod shards, so writers on different row groups never contend and
// the active entries of distinct shards touch disjoint output rows — the
// property the parallel fused pass scatters by.
const DefaultShards = 8

// Options configures an Updatable.
type Options struct {
	// K is the right-hand-side regime hint passed to format
	// (re-)selection (0 or 1: single-vector SpMV).
	K int
	// Format pins the base format by registry name. Empty selects
	// automatically, at build time and again after every compaction.
	Format string
	// Probe lets (re-)selection micro-probe its shortlist.
	Probe bool
	// Cache overrides the decision cache consulted by (re-)selection
	// (nil: the process-wide cache). Tests isolating the zero-probe
	// re-selection contract pass their own.
	Cache *cache.DecisionCache
	// Learned overrides the experience base (re-)selection consults and
	// feeds (nil: the process-wide default). Sessions pass their own so a
	// compaction's probe outcomes stay session-local.
	Learned *selector.Learned
	// Shards is the delta-log shard count (0: DefaultShards).
	Shards int
	// MinCompact and CompactRatio override the process-wide compaction
	// trigger (SetCompactionThreshold) for this matrix; zero keeps the
	// defaults. A background compaction starts when the overlay holds at
	// least max(MinCompact, CompactRatio*base-nnz) entries.
	MinCompact   int
	CompactRatio float64
	// NoAutoCompact disables the threshold trigger; the overlay only
	// folds on an explicit Compact call. Benchmarks measuring overlay
	// cost at a controlled fill use it.
	NoAutoCompact bool
}

// cell addresses one matrix position in a shard's net-delta index.
type cell struct{ r, c int32 }

// shardView is the published, effectively-immutable view of one shard's
// active log: parallel arrays in append order with strictly ascending
// sequence numbers. Appends extend the backing arrays in place past the
// published length and then publish a longer view — indices below a
// published length are never rewritten, so a reader holding any view sees
// frozen data.
type shardView struct {
	seq      []uint64
	row, col []int32
	val      []float64
}

var emptyView = &shardView{}

// logShard is one stripe of the active delta log.
type logShard struct {
	mu   sync.Mutex
	view atomic.Pointer[shardView]
	// net holds the per-cell sum of this shard's entries above the
	// current snapshot floor: the write-time state Set and Delete resolve
	// their current value against. Guarded by mu; rebuilt on freeze.
	net map[cell]float64
}

// snapshot is the immutable read surface of one epoch.
type snapshot struct {
	epoch   uint64
	base    formats.Format
	baseCSR *matrix.CSR
	// frozen is an additive overlay (sorted, duplicate-free, nil when
	// empty) holding every update with floor_prev < seq <= floor that has
	// not yet been folded into baseCSR; fdelta wraps it for the fused
	// kernels.
	frozen *matrix.COO
	fdelta *formats.DeltaCOO
	// floor is the highest update sequence number folded into
	// baseCSR+frozen; active log entries with seq <= floor are stale.
	floor uint64
}

// Updatable is a concurrently updatable sparse matrix. All methods are
// safe for concurrent use; multiplies never block on updates or
// compaction.
type Updatable struct {
	opts   Options
	shards []logShard

	// alloc tickets update sequence numbers; visible is the commit
	// watermark: every update with seq <= visible is published and
	// ordered. Readers bound their active-log scan by visible, so a
	// multiply always observes a prefix of the global update order.
	alloc   atomic.Uint64
	visible atomic.Uint64

	snap atomic.Pointer[snapshot]

	// Commit-wait parking. Writers commit in ticket order; a writer whose
	// predecessor has not yet published spins briefly (the common case: the
	// predecessor is between its own publish steps) and then parks on
	// commitCond instead of burning a core. commitWaiters is read by
	// publishers outside commitMu to keep the no-waiter fast path
	// lock-free; it is only ever written under commitMu, and the empty
	// Lock/Unlock in finishCommit closes the check-then-Wait window.
	commitMu      sync.Mutex
	commitCond    *sync.Cond
	commitWaiters atomic.Int32
	commitParks   atomic.Uint64

	compactMu      sync.Mutex // serializes compactions
	compactPending atomic.Bool
	compactions    atomic.Uint64
	lastFreezeNs   atomic.Int64
	lastCompactNs  atomic.Int64

	// Compaction retry backoff: a failed background rebuild (I/O fault,
	// injected failpoint, refused build) leaves the frozen overlay live —
	// readers stay exact — and schedules the next attempt no earlier than
	// nextCompactNs, doubling the delay per consecutive failure so a
	// persistently failing rebuild cannot hot-loop. compactFails counts the
	// streak; any success resets both.
	compactFails  atomic.Uint32
	nextCompactNs atomic.Int64

	// rebuildHook, when set (tests only), runs between the freeze and the
	// rebuild publish — the window in which readers and writers must keep
	// making progress on the frozen snapshot.
	rebuildHook func()
}

// New builds an Updatable over m. The base format comes from o.Format,
// or from automatic selection (selector.BuildAuto) when empty. m is
// retained as the base matrix and must not be modified by the caller.
func New(m *matrix.CSR, o Options) (*Updatable, error) {
	var f formats.Format
	if o.Format != "" {
		b, ok := formats.Lookup(o.Format)
		if !ok {
			return nil, fmt.Errorf("update: unknown format %q", o.Format)
		}
		var err error
		f, err = b.Build(m)
		if err != nil {
			return nil, err
		}
	} else {
		a, err := selector.BuildAuto(m, selector.AutoOptions{K: o.K, Probe: o.Probe, Cache: o.Cache, Learned: o.Learned})
		if err != nil {
			return nil, err
		}
		f = a
	}
	return Wrap(f, m, o)
}

// Wrap pairs an already-built base format with the CSR it was built
// from. Both are retained; the caller must not modify m afterwards.
func Wrap(f formats.Format, m *matrix.CSR, o Options) (*Updatable, error) {
	if f.Rows() != m.Rows || f.Cols() != m.Cols {
		return nil, fmt.Errorf("update: format %s is %dx%d, matrix is %dx%d",
			f.Name(), f.Rows(), f.Cols(), m.Rows, m.Cols)
	}
	s := o.Shards
	if s <= 0 {
		s = DefaultShards
	}
	u := &Updatable{opts: o, shards: make([]logShard, s)}
	u.commitCond = sync.NewCond(&u.commitMu)
	for i := range u.shards {
		u.shards[i].view.Store(emptyView)
		u.shards[i].net = make(map[cell]float64)
	}
	u.snap.Store(&snapshot{base: f, baseCSR: m})
	return u, nil
}

// Set makes cell (r, c) read exactly v from every multiply that observes
// the update onward. It panics when the coordinates are out of range.
func (u *Updatable) Set(r, c int, v float64) {
	u.apply(r, c, func(cur float64) float64 { return v - cur })
}

// Add adds v to cell (r, c), creating it when absent.
func (u *Updatable) Add(r, c int, v float64) {
	u.apply(r, c, func(float64) float64 { return v })
}

// Delete removes cell (r, c): subsequent multiplies read it as zero, and
// the next compaction drops its storage.
func (u *Updatable) Delete(r, c int) {
	u.apply(r, c, func(cur float64) float64 { return -cur })
}

// apply resolves one update into an additive log entry and commits it.
// Set and Delete need the cell's current value, which under the shard
// lock is exactly base + frozen + the shard's net index (freezes take
// every shard lock, so the snapshot and the index cannot drift apart
// while we hold ours).
func (u *Updatable) apply(r, c int, dv func(cur float64) float64) {
	if s := u.snap.Load(); r < 0 || r >= s.baseCSR.Rows || c < 0 || c >= s.baseCSR.Cols {
		panic(fmt.Sprintf("update: entry (%d,%d) out of range %dx%d", r, c, s.baseCSR.Rows, s.baseCSR.Cols))
	}
	key := cell{int32(r), int32(c)}
	sh := &u.shards[r%len(u.shards)]
	sh.mu.Lock()
	s := u.snap.Load()
	cur := csrAt(s.baseCSR, key.r, key.c) + cooAt(s.frozen, key.r, key.c) + sh.net[key]
	d := dv(cur)
	if d == 0 {
		// No-op update: Set to the present value, Delete of an absent
		// cell, Add of zero. Nothing to log.
		sh.mu.Unlock()
		return
	}
	seq := u.alloc.Add(1)
	old := sh.view.Load()
	// Appends may extend the shared backing arrays in place (indices below
	// every published length stay untouched) and publish the longer view;
	// growth reallocates, which is what keeps appends amortized O(1).
	nv := &shardView{
		seq: append(old.seq, seq),
		row: append(old.row, key.r),
		col: append(old.col, key.c),
		val: append(old.val, d),
	}
	sh.view.Store(nv)
	if nd := sh.net[key] + d; nd == 0 {
		delete(sh.net, key)
	} else {
		sh.net[key] = nd
	}
	sh.mu.Unlock()
	// Commit in ticket order: wait for every earlier update to become
	// visible, then publish ours. The chain always advances — every
	// allocated ticket is published before its holder reaches this point.
	u.commit(seq)
	if !u.opts.NoAutoCompact {
		u.maybeCompact()
	}
}

// commitSpins is how many cooperative yields a committing writer spends
// before parking. The predecessor is usually a handful of instructions
// from its own publish, so a short spin wins; past it the writer is being
// scheduled against many peers (or a descheduled predecessor) and burning
// a core on Gosched only steals time from the writer everyone is waiting
// on.
const commitSpins = 128

// commit publishes seq once every earlier ticket is visible: spin
// briefly, then park on commitCond until the predecessor's publish wakes
// the queue.
func (u *Updatable) commit(seq uint64) {
	for i := 0; i < commitSpins; i++ {
		if u.visible.Load() == seq-1 {
			u.finishCommit(seq)
			return
		}
		runtime.Gosched()
	}
	u.commitParks.Add(1)
	u.commitMu.Lock()
	u.commitWaiters.Add(1)
	for u.visible.Load() != seq-1 {
		u.commitCond.Wait()
	}
	u.commitWaiters.Add(-1)
	u.commitMu.Unlock()
	u.finishCommit(seq)
}

// finishCommit publishes seq and wakes parked successors. The no-waiter
// fast path is one atomic load. When a waiter exists, the empty
// Lock/Unlock before Broadcast is what makes the wakeup reliable: a
// parker holds commitMu from its predicate check until Wait releases it,
// so by the time this publisher gets the lock the parker either saw the
// new watermark (and never waited) or is already inside Wait, where the
// Broadcast reaches it. Both loads are sequentially consistent, so a
// publisher that misses a just-arrived waiter's increment implies that
// waiter's later predicate load sees the new watermark.
func (u *Updatable) finishCommit(seq uint64) {
	u.visible.Store(seq)
	if u.commitWaiters.Load() != 0 {
		u.commitMu.Lock()
		//lint:ignore SA2001 empty critical section orders publish vs. park
		u.commitMu.Unlock()
		u.commitCond.Broadcast()
	}
}

// csrAt returns the stored value at (r, c), zero when absent.
func csrAt(m *matrix.CSR, r, c int32) float64 {
	cols, vals := m.Row(int(r))
	i := sort.Search(len(cols), func(i int) bool { return cols[i] >= c })
	if i < len(cols) && cols[i] == c {
		return vals[i]
	}
	return 0
}

// cooAt returns the overlay value at (r, c) by binary search over the
// row-major sorted entries, zero when absent (or when there is no
// overlay).
func cooAt(o *matrix.COO, r, c int32) float64 {
	if o == nil {
		return 0
	}
	n := len(o.Val)
	i := sort.Search(n, func(i int) bool {
		if o.RowIdx[i] != r {
			return o.RowIdx[i] > r
		}
		return o.ColIdx[i] >= c
	})
	if i < n && o.RowIdx[i] == r && o.ColIdx[i] == c {
		return o.Val[i]
	}
	return 0
}

// At returns the current value of cell (r, c) as the next multiply would
// observe it.
func (u *Updatable) At(r, c int) float64 {
	if s := u.snap.Load(); r < 0 || r >= s.baseCSR.Rows || c < 0 || c >= s.baseCSR.Cols {
		panic(fmt.Sprintf("update: entry (%d,%d) out of range %dx%d", r, c, s.baseCSR.Rows, s.baseCSR.Cols))
	}
	key := cell{int32(r), int32(c)}
	sh := &u.shards[r%len(u.shards)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := u.snap.Load()
	return csrAt(s.baseCSR, key.r, key.c) + cooAt(s.frozen, key.r, key.c) + sh.net[key]
}
