package update

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/formats"
	"repro/internal/matrix"
	"repro/internal/testutil"
)

// mutateRandomly drives n random Set/Add/Delete operations through u and a
// dense mirror in lockstep, mid-way forcing one compaction so the sequence
// exercises base, frozen overlay, and active log together.
func mutateRandomly(t *testing.T, u *Updatable, dense [][]float64, rng *rand.Rand, n int) {
	t.Helper()
	rows, cols := len(dense), len(dense[0])
	for i := 0; i < n; i++ {
		r, c := rng.Intn(rows), rng.Intn(cols)
		// Eighths-of-integers values keep every float64 sum exact, so the
		// mirror and the fused pass agree bit-for-bit where tolerances allow.
		v := float64(rng.Intn(64)-32) / 8
		switch rng.Intn(4) {
		case 0, 1:
			u.Set(r, c, v)
			dense[r][c] = v
		case 2:
			u.Add(r, c, v)
			dense[r][c] += v
		default:
			u.Delete(r, c)
			dense[r][c] = 0
		}
		if i == n/2 {
			if err := u.Compact(); err != nil {
				t.Fatalf("mid-sequence Compact: %v", err)
			}
		}
	}
}

// checkAgainstDense compares every multiply entry point of u with the
// dense oracle product.
func checkAgainstDense(t *testing.T, label string, u *Updatable, dense [][]float64, ks []int) {
	t.Helper()
	rows, cols := len(dense), len(dense[0])
	x := matrix.RandomVector(cols, 1000)
	want := make([]float64, rows)
	for r := 0; r < rows; r++ {
		var acc float64
		for c := 0; c < cols; c++ {
			acc += dense[r][c] * x[c]
		}
		want[r] = acc
	}
	got := make([]float64, rows)
	u.SpMV(x, got)
	if d := testutil.MaxAbsDiff(got, want); d > testutil.TolEngine {
		t.Errorf("%s: serial SpMV differs from dense oracle by %g", label, d)
	}
	for i := range got {
		got[i] = 0
	}
	u.SpMVParallel(x, got, 8)
	if d := testutil.MaxAbsDiff(got, want); d > testutil.TolEngine {
		t.Errorf("%s: parallel SpMV differs from dense oracle by %g", label, d)
	}
	for _, k := range ks {
		xk := matrix.RandomVector(cols*k, int64(2000+k))
		wantk := make([]float64, rows*k)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				v := dense[r][c]
				if v == 0 {
					continue
				}
				for tt := 0; tt < k; tt++ {
					wantk[r*k+tt] += v * xk[c*k+tt]
				}
			}
		}
		gotk := make([]float64, rows*k)
		u.MultiplyMany(gotk, xk, k)
		if d := testutil.MaxAbsDiff(gotk, wantk); d > testutil.TolEngine {
			t.Errorf("%s: MultiplyMany k=%d differs from dense oracle by %g", label, k, d)
		}
	}
}

func denseOf(m *matrix.CSR) [][]float64 {
	d := make([][]float64, m.Rows)
	for r := range d {
		d[r] = make([]float64, m.Cols)
		cols, vals := m.Row(r)
		for i, c := range cols {
			d[r][int(c)] += vals[i]
		}
	}
	return d
}

// TestUpdatableMatchesDenseOracle is the core equivalence property: after
// an arbitrary update sequence — spanning a forced mid-sequence compaction
// — every multiply entry point of every base format agrees with a dense
// mirror of the same sequence, for k in {1, 4, 8}.
func TestUpdatableMatchesDenseOracle(t *testing.T) {
	mats := map[string]*matrix.CSR{
		"random":    matrix.Random(200, 180, 0.05, 3),
		"banded":    matrix.Tridiagonal(150, 2, -1),
		"emptyrows": testutil.WithEmptyRows(t),
	}
	ks := []int{1, 4, 8}
	for mname, m := range mats {
		for _, b := range formats.Registry() {
			f, err := b.Build(m)
			if err != nil {
				if errors.Is(err, formats.ErrBuild) {
					continue // dense-slab formats may legitimately refuse
				}
				t.Fatalf("%s on %s: %v", b.Name, mname, err)
			}
			u, err := Wrap(f, m, Options{Format: b.Name, Shards: 4, NoAutoCompact: true})
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Name, mname, err)
			}
			dense := denseOf(m)
			rng := rand.New(rand.NewSource(int64(len(mname)*1000 + len(b.Name))))
			mutateRandomly(t, u, dense, rng, 300)
			checkAgainstDense(t, b.Name+" on "+mname, u, dense, ks)
		}
	}
}

// TestCompactBitwiseMatchesFreshBuild pins the compaction contract: after
// folding the whole overlay, the Updatable is exactly a fresh build of its
// merged matrix — bitwise for deterministic kernels, reassociation
// tolerance for the two tree-reducing ones.
func TestCompactBitwiseMatchesFreshBuild(t *testing.T) {
	m := matrix.Random(300, 300, 0.04, 17)
	for _, b := range formats.Registry() {
		f, err := b.Build(m)
		if err != nil {
			if errors.Is(err, formats.ErrBuild) {
				continue
			}
			t.Fatalf("%s: %v", b.Name, err)
		}
		u, err := Wrap(f, m, Options{Format: b.Name, NoAutoCompact: true})
		if err != nil {
			t.Fatal(err)
		}
		dense := denseOf(m)
		rng := rand.New(rand.NewSource(int64(len(b.Name))))
		mutateRandomly(t, u, dense, rng, 400)
		if err := u.Compact(); err != nil {
			t.Fatalf("%s: Compact: %v", b.Name, err)
		}
		st := u.Stats()
		if st.FrozenLen != 0 || st.ActiveLen != 0 {
			t.Fatalf("%s: overlay not empty after Compact: frozen=%d active=%d",
				b.Name, st.FrozenLen, st.ActiveLen)
		}
		// Rebuild the merged matrix from scratch through the same builder
		// the compactor used (it may have fallen back to Naive-CSR).
		merged := u.BaseMatrix()
		fb, ok := formats.Lookup(u.Base().Name())
		if !ok {
			t.Fatalf("%s: base %q not in registry", b.Name, u.Base().Name())
		}
		fresh, err := fb.Build(merged)
		if err != nil {
			t.Fatalf("%s: fresh build of merged matrix: %v", b.Name, err)
		}
		x := matrix.RandomVector(m.Cols, 4242)
		got := make([]float64, m.Rows)
		want := make([]float64, m.Rows)
		u.SpMV(x, got)
		fresh.SpMV(x, want)
		if i, ok := testutil.EqualOrClose(u.Base().Name(), got, want); !ok {
			t.Errorf("%s: post-Compact SpMV differs from fresh build at row %d: %g vs %g",
				b.Name, i, got[i], want[i])
		}
		if u.NNZ() != fresh.NNZ() {
			t.Errorf("%s: post-Compact NNZ %d != fresh %d", b.Name, u.NNZ(), fresh.NNZ())
		}
	}
}

// TestUpdatableAccessors covers the small introspection surface.
func TestUpdatableAccessors(t *testing.T) {
	m := matrix.Tridiagonal(64, 2, -1)
	u, err := New(m, Options{Format: "Naive-CSR", NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	if u.Name() != "Updatable[Naive-CSR]" {
		t.Errorf("Name() = %q", u.Name())
	}
	if u.Rows() != 64 || u.Cols() != 64 {
		t.Errorf("shape %dx%d", u.Rows(), u.Cols())
	}
	if u.NNZ() != int64(m.NNZ()) {
		t.Errorf("NNZ %d != %d", u.NNZ(), m.NNZ())
	}
	if u.Bytes() <= 0 {
		t.Error("Bytes() not positive")
	}
	if u.Epoch() != 0 {
		t.Errorf("fresh epoch %d", u.Epoch())
	}
	if got := u.At(0, 0); got != 2 {
		t.Errorf("At(0,0) = %g, want 2", got)
	}
	u.Set(0, 1, 9)
	if got := u.At(0, 1); got != 9 {
		t.Errorf("At(0,1) after Set = %g", got)
	}
	u.Add(0, 1, 1)
	if got := u.At(0, 1); got != 10 {
		t.Errorf("At(0,1) after Add = %g", got)
	}
	u.Delete(0, 1)
	if got := u.At(0, 1); got != 0 {
		t.Errorf("At(0,1) after Delete = %g", got)
	}
	st := u.Stats()
	if st.BaseFormat != "Naive-CSR" || st.Updates == 0 {
		t.Errorf("Stats = %+v", st)
	}
	if _, err := New(m, Options{Format: "no-such-format"}); err == nil {
		t.Error("unknown format accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range Set did not panic")
			}
		}()
		u.Set(64, 0, 1)
	}()
}
