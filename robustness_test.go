package spmv_test

// CI-gated robustness acceptance tests, at the facade the paper's
// serving scenario uses:
//
//   - cancellation latency: cancelling mid-multiply on a large matrix
//     returns context.Canceled well before the uncancelled sweep would
//     have finished (workers poll at partition-chunk granularity);
//   - panic containment: an injected worker panic surfaces as an error
//     on that one call, and the engine keeps serving the same shard;
//   - journal degradation: a dying decision journal never fails a Build
//     or a multiply — selection just goes memory-only.

import (
	"context"
	"errors"
	"os"
	"runtime"
	"testing"
	"time"

	spmv "repro"
	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/failpoint"
)

// forceParallel makes the engine dispatch to pool workers even on a
// single-core CI box: the worker cap rises so Acquire grants real lanes,
// and GOMAXPROCS rises so a cancelling goroutine is actually scheduled
// while kernels run (on one P it would wait out a preemption slice,
// which is harness latency, not engine latency).
func forceParallel(t *testing.T) {
	t.Helper()
	prevProcs := runtime.GOMAXPROCS(0)
	if prevProcs < 4 {
		runtime.GOMAXPROCS(4)
	}
	prevW := exec.SetMaxWorkers(8)
	t.Cleanup(func() {
		runtime.GOMAXPROCS(prevProcs)
		exec.SetMaxWorkers(prevW)
	})
}

// bigMatrix generates a matrix large enough that a blocked multiply runs
// for tens of milliseconds — room for a mid-flight cancel to land.
func bigMatrix(t testing.TB) *spmv.Matrix {
	t.Helper()
	m, err := spmv.Generate(spmv.GeneratorParams{
		Rows: 200_000, Cols: 200_000,
		AvgNNZPerRow: 16, StdNNZPerRow: 4,
		SkewCoeff: 4, BWScaled: 0.3,
		CrossRowSim: 0.4, AvgNumNeigh: 1.0, Seed: 1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCancellationLatencyGate is the acceptance gate for deadline
// propagation: a multiply cancelled early must return context.Canceled
// in a small fraction of the uncancelled sweep time.
func TestCancellationLatencyGate(t *testing.T) {
	forceParallel(t)
	m := bigMatrix(t)
	b, _ := spmv.FormatByName("Naive-CSR")
	f, err := b.Build(m)
	if err != nil {
		t.Fatal(err)
	}

	// Grow k until the uncancelled sweep is long enough to measure a
	// cancellation against (fast hosts need a heavier sweep, not a
	// flakier threshold). The floor must dwarf scheduling jitter: on an
	// oversubscribed single-CPU box the cancelling goroutine itself can
	// wait out a few ~10ms preemption slices before cancel() even runs,
	// so a short sweep would gate on the OS scheduler, not the engine.
	k := 8
	var baseline time.Duration
	for ; k <= 64; k *= 2 {
		x := make([]float64, m.Cols*k)
		y := make([]float64, m.Rows*k)
		for i := range x {
			x[i] = 1
		}
		start := time.Now()
		if err := spmv.MultiplyManyCtx(context.Background(), f, y, x, k); err != nil {
			t.Fatalf("uncancelled MultiplyManyCtx: %v", err)
		}
		baseline = time.Since(start)
		if baseline >= 150*time.Millisecond {
			break
		}
	}
	if k > 64 {
		k = 64
	}
	t.Logf("uncancelled sweep: %v at k=%d", baseline, k)

	x := make([]float64, m.Cols*k)
	y := make([]float64, m.Rows*k)
	for i := range x {
		x[i] = 1
	}

	// Cancel a tenth of the way in; the call must abort well before the
	// sweep would have completed. The 60% bound is deliberately loose —
	// chunk polling responds in well under a millisecond, but CI boxes
	// stall — while still ruling out run-to-completion (100%+). One
	// retry absorbs a single pathological scheduling event; a broken
	// engine runs to completion every time and fails both attempts.
	for attempt := 1; ; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(baseline / 10)
			cancel()
		}()
		start := time.Now()
		err = spmv.MultiplyManyCtx(ctx, f, y, x, k)
		elapsed := time.Since(start)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled MultiplyManyCtx = %v, want context.Canceled", err)
		}
		if elapsed <= baseline*6/10 {
			t.Logf("cancelled after %v (cancel sent at %v, attempt %d)", elapsed, baseline/10, attempt)
			break
		}
		if attempt == 2 {
			t.Fatalf("cancelled multiply took %v of a %v sweep twice; cancellation latency unbounded?", elapsed, baseline)
		}
		t.Logf("attempt %d: cancelled multiply took %v of a %v sweep; retrying once", attempt, elapsed, baseline)
	}

	// A pre-cancelled context never starts the sweep.
	pre, precancel := context.WithCancel(context.Background())
	precancel()
	start := time.Now()
	if err := spmv.MultiplyManyCtx(pre, f, y, x, k); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled MultiplyManyCtx = %v, want context.Canceled", err)
	}
	if e := time.Since(start); e > baseline/4 {
		t.Errorf("pre-cancelled multiply took %v, want near-immediate return", e)
	}

	// And a deadline already behind us reports DeadlineExceeded.
	dl, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if err := spmv.MultiplyCtx(dl, f, y[:m.Rows], x[:m.Cols]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline MultiplyCtx = %v, want context.DeadlineExceeded", err)
	}
}

// TestWorkerPanicContainmentGate is the acceptance gate for fault
// isolation: a kernel panic injected into a pool worker surfaces as an
// error on exactly that call, and the engine serves every subsequent
// call on the same shard.
func TestWorkerPanicContainmentGate(t *testing.T) {
	forceParallel(t)
	m := bigMatrix(t)
	b, _ := spmv.FormatByName("Naive-CSR")
	f, err := b.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = float64(i%3) + 1
	}
	want := make([]float64, m.Rows)
	f.SpMV(x, want)

	prev := failpoint.SetEnabled(true)
	defer failpoint.SetEnabled(prev)
	if err := failpoint.Enable("exec.worker", "panic*1"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("exec.worker")

	err = spmv.MultiplyCtx(context.Background(), f, y, x)
	if err == nil {
		t.Fatal("MultiplyCtx with injected worker panic returned nil")
	}
	var pe *spmv.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("MultiplyCtx error = %T %v, want *spmv.PanicError", err, err)
	}
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("panic payload %v does not chain to the injected fault", err)
	}
	if failpoint.Fired("exec.worker") != 1 {
		t.Fatalf("exec.worker fired %d times, want 1", failpoint.Fired("exec.worker"))
	}

	// The poisoned call is the whole blast radius: the same format, the
	// same shard pools, immediately serve correct products.
	for call := 0; call < 20; call++ {
		if err := spmv.MultiplyCtx(context.Background(), f, y, x); err != nil {
			t.Fatalf("call %d after contained panic: %v", call, err)
		}
	}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("row %d = %v after contained panic, want %v", i, y[i], want[i])
		}
	}
}

// TestDegradedJournalNeverFailsBuildOrMultiply: selection persistence
// dying (full disk on every journal append) is invisible at the facade —
// Auto still selects, multiplies still run, and the degradation is
// visible only in the store's stats.
func TestDegradedJournalNeverFailsBuildOrMultiply(t *testing.T) {
	dir := t.TempDir()
	if err := spmv.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	defer spmv.UnsetCacheDir()

	prev := failpoint.SetEnabled(true)
	defer failpoint.SetEnabled(prev)
	if err := failpoint.Enable("cache.append", "enospc"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("cache.append")

	m, err := spmv.Generate(spmv.GeneratorParams{
		Rows: 3000, Cols: 3000,
		AvgNNZPerRow: 8, StdNNZPerRow: 2,
		SkewCoeff: 4, BWScaled: 0.2,
		CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := spmv.Auto(m, spmv.AutoOptions{K: 1})
	if err != nil {
		t.Fatalf("Auto with dying journal: %v", err)
	}
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = 1
	}
	if err := spmv.MultiplyCtx(context.Background(), f, y, x); err != nil {
		t.Fatalf("Multiply with dying journal: %v", err)
	}

	st := cache.Decisions.Store()
	if st == nil {
		t.Fatal("no journal attached despite SetCacheDir")
	}
	if deg, reason := st.Degraded(); !deg {
		t.Error("journal not degraded despite ENOSPC on every append")
	} else if reason == "" {
		t.Error("degradation recorded without a reason")
	}
}

// TestFailpointOverheadBudget is the bench-smoke A/B gate (run by the CI
// bench leg with SPMV_FAILPOINT_BENCH=1): the failpoint hooks on the
// dispatch path must cost <= 2% even in their worst supported
// configuration — framework armed with an empty site table, where every
// Inject takes the slow path's map probe. The default disabled fast path
// (one atomic load) is strictly cheaper than what this measures.
func TestFailpointOverheadBudget(t *testing.T) {
	if os.Getenv("SPMV_FAILPOINT_BENCH") == "" {
		t.Skip("set SPMV_FAILPOINT_BENCH=1 to run the overhead A/B gate")
	}
	forceParallel(t)
	m := bigMatrix(t)
	b, _ := spmv.FormatByName("Naive-CSR")
	f, err := b.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = 1
	}
	ctx := context.Background()
	measure := func() time.Duration {
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < 9; rep++ {
			start := time.Now()
			if err := spmv.MultiplyCtx(ctx, f, y, x); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	spmv.MultiplyCtx(ctx, f, y, x) // warm plans and pages
	failpoint.DisableAll()
	prev := failpoint.SetEnabled(false)
	off := measure()
	failpoint.SetEnabled(true)
	on := measure()
	failpoint.SetEnabled(prev)

	t.Logf("multiply min-of-9: failpoints off %v, armed-empty %v", off, on)
	if limit := off + off/50; on > limit {
		t.Errorf("armed failpoint hooks cost %v vs %v disabled (> 2%% budget)", on, off)
	}
}
