package spmv

import (
	"repro/internal/session"
	"repro/internal/topo"
)

// Session is one isolated selection context: its own decision cache,
// journal, and online-learned experience base, plus a default (k, probe,
// shards) context for Auto builds. Two sessions share nothing, so
// concurrent hosts — one server registry per journal, multi-tenant
// embedders, tests — never fight over process-global state the way the
// package-level SetShards/SetCacheDir knobs would make them.
//
//	sess, err := spmv.NewSession(spmv.SessionOptions{CacheDir: dir, K: 8})
//	defer sess.Close()
//	f, err := sess.Auto(m, spmv.AutoOptions{Probe: true})
//
// The package-level Auto, NewUpdatable, SetShards and SetCacheDir remain
// supported as a thin wrapper over the default session (DefaultSession):
// existing callers keep their exact behavior.
type Session = session.Session

// SessionOptions configures NewSession.
type SessionOptions = session.Options

// NewSession opens an isolated selection session. With CacheDir set, the
// session's journal opens there directly (creating the directory as
// needed) and warm-loads: prior decisions resolve with zero probes, prior
// probe outcomes seed the session's experience base. An empty CacheDir
// gives a memory-only session. Close releases the journal handle.
func NewSession(o SessionOptions) (*Session, error) { return session.New(o) }

// DefaultSession returns the process-wide default session — the state the
// package-level facade functions operate on (the global decision cache
// and experience base, the SetCacheDir journal, the SetShards/topology
// shard count). Useful to pass "the legacy globals" where a *Session is
// expected, e.g. to a server registry that should share the process
// journal.
func DefaultSession() *Session { return session.Default() }

// SetShards overrides the execution-pool shard count process-wide; n <= 0
// removes the override, restoring the SPMV_SHARDS / detected-topology
// default. Returns the previous override (0 if none). This is default-
// session state: every multiply and every decision key in the process
// observes it. Callers needing a scoped shard context without flipping
// the process should record it in a Session (SessionOptions.Shards)
// instead.
func SetShards(n int) int { return topo.SetShards(n) }

// Shards returns the execution-pool shard count currently in effect:
// the SetShards override, else SPMV_SHARDS, else the detected topology
// domain count.
func Shards() int { return topo.Shards() }
