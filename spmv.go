// Package spmv is the public facade of this repository: a feature-based
// SpMV performance-analysis toolkit reproducing Mpakos et al., "Feature-
// based SpMV Performance Analysis on Contemporary Devices" (IPDPS 2023;
// DBLP key conf/ipps/MpakosGAPKG23).
//
// It re-exports the stable surface of the internal packages:
//
//   - sparse matrices (CSR/COO, MatrixMarket I/O) and the five-feature
//     extraction of Section III-A;
//   - the artificial matrix generator of Section III-B;
//   - fourteen storage formats with serial and parallel SpMV kernels,
//     dispatched on a sharded, topology-aware execution engine (one
//     persistent worker-pool shard per memory domain; see internal/exec);
//   - analytical models of the paper's nine testbeds, plus a native engine
//     measuring real kernels on the host CPU;
//   - the experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	m, err := spmv.Generate(spmv.GeneratorParams{
//		Rows: 100000, Cols: 100000,
//		AvgNNZPerRow: 20, StdNNZPerRow: 6,
//		SkewCoeff: 10, BWScaled: 0.3,
//		CrossRowSim: 0.5, AvgNumNeigh: 1.0, Seed: 42,
//	})
//	fv := spmv.Extract(m)
//	for _, b := range spmv.Formats() {
//		f, err := b.Build(m)
//		...
//	}
package spmv

import (
	"context"
	"io"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/formats"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/selector"
	"repro/internal/simd"
	"repro/internal/update"
)

// Core matrix types.
type (
	// Matrix is a sparse matrix in CSR form, the substrate every format
	// builds from.
	Matrix = matrix.CSR
	// Triplets is a sparse matrix in coordinate form.
	Triplets = matrix.COO
	// Features is a point in the paper's five-feature space.
	Features = core.FeatureVector
	// GeneratorParams configures the artificial matrix generator
	// (Listing 1 of the paper).
	GeneratorParams = gen.Params
	// Format is a built storage format with SpMV kernels.
	Format = formats.Format
	// FormatBuilder constructs a Format from a CSR matrix.
	FormatBuilder = formats.Builder
	// Device describes one of the paper's nine testbeds.
	Device = device.Spec
	// Prediction is a device-model performance/power estimate.
	Prediction = device.Result
	// Experiment regenerates one of the paper's tables or figures.
	Experiment = bench.Experiment
	// ExperimentOptions configures an experiment run.
	ExperimentOptions = bench.Options
	// Report is a rendered experiment result table.
	Report = bench.Report
	// AutoOptions configures the automatic format selection of Auto.
	AutoOptions = selector.AutoOptions
	// AutoFormat is a Format chosen by the selection subsystem; it
	// delegates every kernel to the chosen concrete format and carries the
	// decision record (Chosen, Choice).
	AutoFormat = formats.Auto
	// Updatable is a concurrently updatable matrix: a read-optimized base
	// format fused with a delta overlay (see NewUpdatable).
	Updatable = update.Updatable
	// UpdateOptions configures an Updatable.
	UpdateOptions = update.Options
	// UpdateStats is a point-in-time view of an Updatable's internals.
	UpdateStats = update.Stats
)

// Extract measures the feature vector of a matrix.
func Extract(m *Matrix) Features { return core.Extract(m) }

// Generate builds an artificial matrix matching the requested features.
func Generate(p GeneratorParams) (*Matrix, error) { return gen.Generate(p) }

// GenerateFromFeatures derives generator parameters from a feature-space
// point and builds the matrix.
func GenerateFromFeatures(fv Features, seed int64) (*Matrix, error) {
	return gen.Generate(gen.FromFeatures(fv, seed))
}

// Formats returns every storage format builder, state-of-practice first.
func Formats() []FormatBuilder { return formats.Registry() }

// Argument errors returned by the Multiply entry points. They replace the
// panics (and, for short slices, silent corruption) a served system cannot
// afford; test with errors.Is. The identities live in internal/formats so
// the serving layer (internal/serve) maps the very same errors to HTTP
// statuses a linked caller would see from the facade.
var (
	// ErrNilFormat reports a nil Format argument.
	ErrNilFormat = formats.ErrNilFormat
	// ErrInvalidK reports a non-positive right-hand-side count.
	ErrInvalidK = formats.ErrInvalidK
	// ErrDimension reports x or y vectors (nil, short, or long) that do
	// not match the matrix shape and k.
	ErrDimension = formats.ErrDimension
)

// PanicError is a kernel panic contained by the execution engine: the
// worker recovered, the shard stayed serviceable, and the Ctx entry points
// return the panic as this error (errors.As). See internal/exec.
type PanicError = exec.PanicError

// checkArgs validates the shared multiply arguments; every facade entry
// point rejects bad calls here before any kernel or engine work.
func checkArgs(f Format, y, x []float64, k int) error {
	return formats.CheckArgs(f, y, x, k)
}

// Multiply computes y = A*x on the execution engine with the machine's
// parallelism. It validates its arguments (ErrNilFormat, ErrDimension)
// instead of panicking; nil error means y holds the product.
func Multiply(f Format, y, x []float64) error {
	if err := checkArgs(f, y, x, 1); err != nil {
		return err
	}
	f.SpMVParallel(x, y, exec.MaxWorkers())
	return nil
}

// MultiplyCtx is Multiply under a context: the deadline or cancellation
// propagates into the execution engine, whose worker lanes poll it at
// partition-chunk granularity — a cancelled call returns the context's
// error (context.Canceled, context.DeadlineExceeded) within a bounded
// latency instead of finishing its sweep, and y must then be treated as
// garbage. A panic on a worker lane comes back as a *PanicError with the
// engine still serviceable. Formats without native chunk polling (see
// docs/ARCHITECTURE.md, "The robustness layer") check the context before
// dispatch and then run to completion.
func MultiplyCtx(ctx context.Context, f Format, y, x []float64) error {
	if err := checkArgs(f, y, x, 1); err != nil {
		return err
	}
	return formats.SpMVCtx(ctx, f, x, y, exec.MaxWorkers())
}

// MultiplyMany computes Y = A*X for a block of k dense right-hand sides at
// once (SpMM). X and Y are row-major: X holds k values per matrix column
// (len cols*k) and Y k values per row (len rows*k). Hot formats (CSR
// family, ELL, HYB, SELL-C-s, BCSR, DIA, COO) run fused register-tiled kernels
// that stream the matrix once per tile of 4 vectors — every loaded nonzero
// feeds k FMAs instead of one — on the same sharded execution engine as
// the single-vector kernels; the remaining formats multiply one vector at
// a time. This is the kernel block Krylov solvers and multi-query
// inference issue per iteration. Arguments are validated (ErrNilFormat,
// ErrInvalidK, ErrDimension) instead of panicking.
func MultiplyMany(f Format, y, x []float64, k int) error {
	if err := checkArgs(f, y, x, k); err != nil {
		return err
	}
	f.MultiplyMany(y, x, k)
	return nil
}

// MultiplyManyCtx is MultiplyMany under a context, with MultiplyCtx's
// cancellation-latency, partial-result and panic-containment contract.
func MultiplyManyCtx(ctx context.Context, f Format, y, x []float64, k int) error {
	if err := checkArgs(f, y, x, k); err != nil {
		return err
	}
	return formats.MultiplyManyCtx(ctx, f, y, x, k)
}

// SetSIMD toggles the runtime SIMD dispatch layer (internal/simd): the
// architecture-detected micro-kernels behind the CSR, ELL, SELL-C-sigma
// and BCSR hot loops. It returns the previous state. Enabling is a no-op
// on hosts without accelerated kernels; the SPMV_NOSIMD environment
// variable forces scalar dispatch at startup without code changes. The
// scalar kernels are the portable reference the accelerated ones are
// property-tested against — see docs/ARCHITECTURE.md, "The dispatch
// layer".
func SetSIMD(on bool) bool { return simd.SetEnabled(on) }

// SIMDInfo reports the active dispatch configuration: the instruction-set
// level the kernels currently run at ("scalar", "avx2", "avx512"), the
// vector width in float64 lanes, and the CPU feature set detected at
// startup (which may exceed the active level — detection reports what
// the host has, dispatch uses what the kernels support, and the
// SPMV_SIMD_LEVEL environment variable or SetSIMDLevel can cap the tier
// below the hardware's).
func SIMDInfo() (level string, width int, features []string) {
	return simd.Level(), simd.Width(), simd.Features()
}

// SetSIMDLevel re-caps the dispatch tier at runtime: "scalar", "avx2",
// "avx512" or "auto" (widest detected, calibrated — the boot default,
// also reachable via the SPMV_SIMD_LEVEL environment variable). Caps
// above the detected capability clamp to it. Returns the previous cap
// token, so SetSIMDLevel(SetSIMDLevel("avx2")) restores the prior
// dispatch exactly. Quiesce in-flight kernels before switching.
func SetSIMDLevel(cap string) string { return simd.SetLevel(cap) }

// SIMDDispatch reports the per-kernel dispatch table: which
// implementation tier ("scalar", "avx2", "avx512") serves each named
// micro-kernel right now. The keys are the dispatch layer's kernel names
// (e.g. "csr.dot-gather", "bcsr.2x2"); see docs/ARCHITECTURE.md, "The
// dispatch layer".
func SIMDDispatch() map[string]string {
	t := simd.Table()
	out := make(map[string]string, len(t))
	for _, e := range t {
		out[e.Kernel] = e.Impl
	}
	return out
}

// SetVecWideRowMin overrides the row-length cutoff at which the vectorized
// CSR kernels switch to their 8-accumulator wide inner loop (default 512,
// tuned for gather-bound x86; the SPMV_VEC_ROWMIN environment variable
// overrides it without rebuilding). n <= 0 restores the default. Returns
// the previous override (0 if none). Hosts with more load ports or cheaper
// gathers can lower it after re-measuring — see docs/BENCHMARKS.md.
func SetVecWideRowMin(n int) int { return formats.SetVecWideRowMin(n) }

// Auto selects a storage format for the matrix and builds it — the
// paper's feature analysis driving execution. The five-feature vector is
// extracted, a k-regime-aware device model shortlists candidate formats
// (k = 1 and k = 8 rank formats differently; set AutoOptions.K to the
// workload's block width), the online-learned experience base promotes
// the measured winner of any similar matrix probed before, an optional
// micro-probe times the shortlist on a row-sampled sub-matrix through the
// execution engine, and the winner is built. Decisions are cached by
// (matrix fingerprint, device, k, shards), so rebuilding the same matrix
// under the same context is instant — and with persistence on (SetCacheDir
// or SPMV_CACHE_DIR) decisions and probe outcomes survive restarts.
//
//	f, err := spmv.Auto(m, spmv.AutoOptions{K: 8, Probe: true})
//	// f.Chosen() names the picked format; f is a regular Format.
func Auto(m *Matrix, o AutoOptions) (*AutoFormat, error) { return selector.BuildAuto(m, o) }

// AutoCtx is Auto under a context: the shortlist micro-probe checks the
// context between candidates (each candidate's timed runs finish, so a
// cancelled selection returns within one candidate's probe budget), and a
// cancelled or expired context aborts the selection with the context's
// error before the winner is built. The decision cache is only written for
// completed selections.
func AutoCtx(ctx context.Context, m *Matrix, o AutoOptions) (*AutoFormat, error) {
	return selector.BuildAutoCtx(ctx, m, o)
}

// SetCacheDir turns on the selection subsystem's persistence layer: the
// decision cache and the probe-outcome experience base journal through an
// append-only JSONL file in dir and warm-load from it immediately, so a
// restarted process re-resolves every previously-seen (matrix, device, k,
// shards) context without ranking or probing. An empty dir resolves the
// default location — the SPMV_CACHE_DIR environment variable, then
// <user cache dir>/go-spmv. Setting SPMV_CACHE_DIR alone enables the same
// behavior with zero code changes; without either, nothing touches disk.
// The journal is corruption-tolerant (bad lines are skipped) and is
// invalidated wholesale when the schema version or host fingerprint
// changes — see docs/ARCHITECTURE.md, "The persistence layer".
func SetCacheDir(dir string) error {
	_, err := selector.Persist(dir)
	return err
}

// UnsetCacheDir turns persistence back off: the journal is detached and
// closed and the directory override cleared. In-memory caches keep their
// contents; nothing further touches disk.
func UnsetCacheDir() { selector.Unpersist() }

// NewUpdatable wraps a matrix in a concurrently updatable form: a
// read-optimized base (chosen automatically, or pinned via
// UpdateOptions.Format) plus a sharded delta log, multiplied together in
// one fused pass. Set/Add/Delete never block multiplies; every multiply
// observes a consistent prefix of the update order. When the overlay
// crosses the compaction threshold, a background compactor folds it into
// a fresh matrix, re-runs format selection (the decision journal makes
// warm re-decisions zero-probe), and swaps epochs without stalling
// readers. The result is a regular Format usable anywhere one is.
//
//	u, err := spmv.NewUpdatable(m, spmv.UpdateOptions{K: 8})
//	u.Set(i, j, 3.5)  // concurrent with u.SpMVParallel(...)
func NewUpdatable(m *Matrix, o UpdateOptions) (*Updatable, error) { return update.New(m, o) }

// SetCompactionThreshold sets the process-wide default compaction trigger
// for updatable matrices: a background compaction starts once an overlay
// holds at least max(min, ratio*base-nnz) entries. Non-positive arguments
// keep the corresponding current value; returns the previous pair.
func SetCompactionThreshold(min int, ratio float64) (int, float64) {
	return update.SetCompactionThreshold(min, ratio)
}

// FormatByName finds a format builder.
func FormatByName(name string) (FormatBuilder, bool) { return formats.Lookup(name) }

// Devices returns the paper's nine testbeds (Table II).
func Devices() []Device { return device.Testbeds() }

// DeviceByName finds a testbed.
func DeviceByName(name string) (Device, bool) { return device.ByName(name) }

// ReadMatrixMarket parses a MatrixMarket coordinate stream.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return matrix.ReadMatrixMarket(r) }

// WriteMatrixMarket writes a matrix as MatrixMarket coordinate real general.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return matrix.WriteMatrixMarket(w, m) }

// Experiments lists every table/figure runner in paper order.
func Experiments() []Experiment { return bench.Experiments() }

// ExperimentByID finds an experiment runner ("fig3", "table4", ...).
func ExperimentByID(id string) (Experiment, bool) { return bench.ByID(id) }
