package spmv_test

import (
	"bytes"
	"math"
	"testing"

	spmv "repro"

	"repro/internal/matrix"
)

// TestEndToEndPipeline exercises the full public workflow: generate a
// matrix from features, round-trip it through MatrixMarket, extract its
// features, build every format, run SpMV, and ask every device model for a
// prediction.
func TestEndToEndPipeline(t *testing.T) {
	m, err := spmv.Generate(spmv.GeneratorParams{
		Rows: 2000, Cols: 2000,
		AvgNNZPerRow: 12, StdNNZPerRow: 4,
		SkewCoeff: 8, BWScaled: 0.3, CrossRowSim: 0.4, AvgNumNeigh: 0.9,
		Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}

	// MatrixMarket round trip through the facade.
	var buf bytes.Buffer
	if err := spmv.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := spmv.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Fatal("MatrixMarket round trip changed the matrix")
	}

	// Features measured from the concrete matrix.
	fv := spmv.Extract(m)
	if fv.NNZ != int64(m.NNZ()) || fv.AvgNNZPerRow < 10 || fv.AvgNNZPerRow > 14 {
		t.Fatalf("implausible features %+v", fv)
	}

	// Every format agrees with the reference.
	x := matrix.RandomVector(m.Cols, 1)
	want := make([]float64, m.Rows)
	m.SpMV(x, want)
	built := 0
	for _, b := range spmv.Formats() {
		f, err := b.Build(m)
		if err != nil {
			continue
		}
		built++
		got := make([]float64, m.Rows)
		f.SpMVParallel(x, got, 4)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("%s: row %d differs", b.Name, i)
			}
		}
	}
	if built < 10 {
		t.Errorf("only %d formats built", built)
	}

	// Every device produces a feasible prediction for this small matrix.
	for _, d := range spmv.Devices() {
		name, res, ok := d.BestFormat(fv)
		if !ok {
			t.Errorf("%s: no feasible format", d.Name)
			continue
		}
		if res.GFLOPS <= 0 || res.Watts <= 0 || name == "" {
			t.Errorf("%s: implausible prediction %+v via %s", d.Name, res, name)
		}
	}
}

func TestFacadeLookups(t *testing.T) {
	if len(spmv.Formats()) < 14 {
		t.Errorf("formats = %d, want >= 14", len(spmv.Formats()))
	}
	if len(spmv.Devices()) != 9 {
		t.Errorf("devices = %d, want 9", len(spmv.Devices()))
	}
	if _, ok := spmv.FormatByName("CSR5"); !ok {
		t.Error("CSR5 missing from facade")
	}
	if _, ok := spmv.DeviceByName("Alveo-U280"); !ok {
		t.Error("Alveo missing from facade")
	}
	if len(spmv.Experiments()) < 13 {
		t.Errorf("experiments = %d", len(spmv.Experiments()))
	}
	if _, ok := spmv.ExperimentByID("fig7"); !ok {
		t.Error("fig7 missing from facade")
	}
}

func TestGenerateFromFeatures(t *testing.T) {
	fv := spmv.Features{MemFootprintMB: 2, AvgNNZPerRow: 16, SkewCoeff: 5,
		CrossRowSim: 0.5, AvgNumNeigh: 1.0, BWScaled: 0.3}
	m, err := spmv.GenerateFromFeatures(fv, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := spmv.Extract(m)
	if math.Abs(got.MemFootprintMB-2) > 0.3 {
		t.Errorf("footprint = %g, want ~2", got.MemFootprintMB)
	}
}
